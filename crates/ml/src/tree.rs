//! Weighted CART regression trees with best-first growth, and a binary
//! classifier wrapper.
//!
//! For binary 0/1 targets, minimizing weighted squared error at a split is
//! equivalent to maximizing weighted Gini gain, so a single regression-tree
//! implementation serves classification (predicted value = probability),
//! gradient boosting (fit to residuals) and ranking (fit to pair outcomes).

use crate::matrix::FeatureMatrix;
use rand::seq::SliceRandom;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Growth limits for a tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Maximum number of leaves; growth is best-first by impurity decrease,
    /// so the most useful splits happen before the budget runs out.
    pub max_leaf_nodes: usize,
    /// Number of features considered per split (`None` = all). Used by the
    /// random forest; requires an RNG at fit time.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_leaf_nodes: usize::MAX,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

struct Candidate {
    gain: f64,
    node_slot: usize,
    depth: usize,
    split: Option<(usize, f32, Vec<usize>, Vec<usize>)>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain
    }
}
impl Eq for Candidate {}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain.total_cmp(&other.gain)
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn weighted_mean(samples: &[usize], y: &[f64], w: &[f64]) -> f64 {
    let mut sw = 0.0;
    let mut swy = 0.0;
    for &i in samples {
        sw += w[i];
        swy += w[i] * y[i];
    }
    if sw > 0.0 {
        swy / sw
    } else {
        0.0
    }
}

/// `(feature, threshold, gain, left samples, right samples)` of a split.
type SplitChoice = (usize, f32, f64, Vec<usize>, Vec<usize>);

/// Finds the split of `samples` minimizing weighted SSE, optionally over a
/// random feature subset.
fn best_split<R: Rng>(
    x: &FeatureMatrix,
    y: &[f64],
    w: &[f64],
    samples: &[usize],
    cfg: &TreeConfig,
    rng: &mut Option<&mut R>,
) -> Option<SplitChoice> {
    let n_features = x.n_cols();
    let features: Vec<usize> = match (cfg.max_features, rng.as_deref_mut()) {
        (Some(k), Some(r)) if k < n_features => {
            let mut all: Vec<usize> = (0..n_features).collect();
            all.shuffle(r);
            all.truncate(k);
            all
        }
        _ => (0..n_features).collect(),
    };

    // Parent statistics.
    let (mut sw, mut swy, mut swy2) = (0.0f64, 0.0f64, 0.0f64);
    for &i in samples {
        sw += w[i];
        swy += w[i] * y[i];
        swy2 += w[i] * y[i] * y[i];
    }
    if sw <= 0.0 {
        return None;
    }
    let parent_sse = swy2 - swy * swy / sw;
    if parent_sse <= 1e-12 {
        return None; // pure node
    }

    let mut best: Option<(usize, f32, f64)> = None;
    let mut order: Vec<usize> = samples.to_vec();
    for &f in &features {
        order.sort_by(|&a, &b| x.at(a, f).total_cmp(&x.at(b, f)));
        let (mut lw, mut lwy, mut lwy2) = (0.0f64, 0.0f64, 0.0f64);
        let mut n_left = 0usize;
        for k in 0..order.len() - 1 {
            let i = order[k];
            lw += w[i];
            lwy += w[i] * y[i];
            lwy2 += w[i] * y[i] * y[i];
            n_left += 1;
            let xv = x.at(i, f);
            let xn = x.at(order[k + 1], f);
            if xv == xn {
                continue; // can't split between equal values
            }
            let n_right = order.len() - n_left;
            if n_left < cfg.min_samples_leaf || n_right < cfg.min_samples_leaf {
                continue;
            }
            let rw = sw - lw;
            if lw <= 0.0 || rw <= 0.0 {
                continue;
            }
            let left_sse = lwy2 - lwy * lwy / lw;
            let right_sse = (swy2 - lwy2) - (swy - lwy) * (swy - lwy) / rw;
            let gain = parent_sse - left_sse - right_sse;
            let threshold = (xv + xn) / 2.0;
            // Like sklearn's CART, an impure node may split even at zero
            // gain (XOR needs a zero-gain first split); keep the best gain.
            if best.map_or(gain >= 0.0, |(_, _, bg)| gain > bg) {
                best = Some((f, threshold, gain));
            }
        }
    }

    best.map(|(f, thr, gain)| {
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for &i in samples {
            if x.at(i, f) <= thr {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        (f, thr, gain, left, right)
    })
}

impl RegressionTree {
    /// Fits a tree to `(x, y)` with optional per-sample weights, growing
    /// best-first by impurity decrease under the limits in `cfg`.
    ///
    /// `rng` enables per-split feature subsampling when
    /// `cfg.max_features` is set.
    pub fn fit<R: Rng>(
        x: &FeatureMatrix,
        y: &[f64],
        weights: Option<&[f64]>,
        cfg: &TreeConfig,
        mut rng: Option<&mut R>,
    ) -> Self {
        assert_eq!(x.n_rows(), y.len(), "x/y length mismatch");
        let w: Vec<f64> = match weights {
            Some(w) => {
                assert_eq!(w.len(), y.len(), "weights length mismatch");
                w.to_vec()
            }
            None => vec![1.0; y.len()],
        };
        let mut nodes: Vec<Node> = Vec::new();
        if x.n_rows() == 0 {
            nodes.push(Node::Leaf { value: 0.0 });
            return Self { nodes };
        }

        let all: Vec<usize> = (0..x.n_rows()).collect();
        nodes.push(Node::Leaf {
            value: weighted_mean(&all, y, &w),
        });
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        let push_candidate = |slot: usize,
                              samples: Vec<usize>,
                              depth: usize,
                              heap: &mut BinaryHeap<Candidate>,
                              rng: &mut Option<&mut R>| {
            if depth >= cfg.max_depth || samples.len() < cfg.min_samples_split {
                return;
            }
            if let Some((f, thr, gain, l, r)) = best_split(x, y, &w, &samples, cfg, rng) {
                heap.push(Candidate {
                    gain,
                    node_slot: slot,
                    depth,
                    split: Some((f, thr, l, r)),
                });
            }
        };
        push_candidate(0, all, 0, &mut heap, &mut rng);

        let mut n_leaves = 1usize;
        while let Some(cand) = heap.pop() {
            if n_leaves >= cfg.max_leaf_nodes {
                break;
            }
            let (f, thr, left_samples, right_samples) =
                cand.split.expect("candidates always carry a split");
            let left_slot = nodes.len();
            nodes.push(Node::Leaf {
                value: weighted_mean(&left_samples, y, &w),
            });
            let right_slot = nodes.len();
            nodes.push(Node::Leaf {
                value: weighted_mean(&right_samples, y, &w),
            });
            nodes[cand.node_slot] = Node::Split {
                feature: f,
                threshold: thr,
                left: left_slot,
                right: right_slot,
            };
            n_leaves += 1; // one leaf became two
            push_candidate(left_slot, left_samples, cand.depth + 1, &mut heap, &mut rng);
            push_candidate(
                right_slot,
                right_samples,
                cand.depth + 1,
                &mut heap,
                &mut rng,
            );
        }
        Self { nodes }
    }

    /// Predicted value for a feature row.
    pub fn predict(&self, row: &[f32]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Index of the leaf node a row falls into (for boosted leaf updates).
    pub fn apply(&self, row: &[f32]) -> usize {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return idx,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Overwrites a leaf's value (Newton updates in gradient boosting).
    ///
    /// # Panics
    /// Panics if `leaf` is not a leaf node.
    pub fn set_leaf_value(&mut self, leaf: usize, value: f64) {
        match &mut self.nodes[leaf] {
            Node::Leaf { value: v } => *v = value,
            Node::Split { .. } => panic!("node {leaf} is not a leaf"),
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the tree (root-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, 0)
    }
}

/// Binary classifier on top of a regression tree over 0/1 targets.
#[derive(Debug, Clone)]
pub struct TreeClassifier {
    tree: RegressionTree,
}

impl TreeClassifier {
    /// Fits with optional class weights `(weight_of_0, weight_of_1)` — the
    /// paper uses `(0.2, 0.8)` for its imbalanced candidate labels.
    pub fn fit<R: Rng>(
        x: &FeatureMatrix,
        labels: &[bool],
        class_weights: Option<(f64, f64)>,
        cfg: &TreeConfig,
        rng: Option<&mut R>,
    ) -> Self {
        let y: Vec<f64> = labels.iter().map(|&b| f64::from(u8::from(b))).collect();
        let w: Option<Vec<f64>> =
            class_weights.map(|(w0, w1)| labels.iter().map(|&b| if b { w1 } else { w0 }).collect());
        let tree = RegressionTree::fit(x, &y, w.as_deref(), cfg, rng);
        Self { tree }
    }

    /// Probability that the row's label is `true` (clamped to `[0, 1]`).
    pub fn predict_proba(&self, row: &[f32]) -> f64 {
        self.tree.predict(row).clamp(0.0, 1.0)
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// The underlying regression tree.
    pub fn tree(&self) -> &RegressionTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type NoRng = Option<&'static mut StdRng>;

    fn xor_data() -> (FeatureMatrix, Vec<f64>) {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0.0, 1.0, 1.0, 0.0];
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_xor_exactly() {
        let (x, y) = xor_data();
        let tree = RegressionTree::fit(&x, &y, None, &TreeConfig::default(), None as NoRng);
        for (i, yi) in y.iter().enumerate() {
            assert!((tree.predict(x.row(i)) - yi).abs() < 1e-9);
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn empty_training_set_predicts_zero() {
        let x = FeatureMatrix::from_rows(&[]);
        let tree = RegressionTree::fit(&x, &[], None, &TreeConfig::default(), None as NoRng);
        assert_eq!(tree.predict(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let tree = RegressionTree::fit(
            &x,
            &[5.0, 5.0, 5.0],
            None,
            &TreeConfig::default(),
            None as NoRng,
        );
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[7.0]), 5.0);
    }

    #[test]
    fn max_depth_limits_growth() {
        let rows: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let cfg = TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(
            &FeatureMatrix::from_rows(&rows),
            &y,
            None,
            &cfg,
            None as NoRng,
        );
        assert!(tree.depth() <= 3);
        assert!(tree.n_leaves() <= 8);
    }

    #[test]
    fn max_leaf_nodes_limits_growth() {
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let y: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let cfg = TreeConfig {
            max_depth: 30,
            max_leaf_nodes: 5,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(
            &FeatureMatrix::from_rows(&rows),
            &y,
            None,
            &cfg,
            None as NoRng,
        );
        assert!(tree.n_leaves() <= 5, "got {} leaves", tree.n_leaves());
    }

    #[test]
    fn min_samples_leaf_respected() {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let cfg = TreeConfig {
            min_samples_leaf: 10,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(
            &FeatureMatrix::from_rows(&rows),
            &y,
            None,
            &cfg,
            None as NoRng,
        );
        // Only one split (10/10) is possible.
        assert!(tree.n_leaves() <= 2);
    }

    #[test]
    fn sample_weights_shift_the_mean() {
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![0.0]]);
        let y = [0.0, 1.0];
        // Identical features: no split possible; weighted mean decides.
        let w = [1.0, 3.0];
        let tree = RegressionTree::fit(&x, &y, Some(&w), &TreeConfig::default(), None as NoRng);
        assert!((tree.predict(&[0.0]) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn best_first_growth_spends_budget_on_best_gains() {
        // Feature 0 separates targets 0 vs 100 (huge gain); feature 1 only
        // separates 0 vs 1 (small gain). With a 2-leaf budget, the tree must
        // split on feature 0.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0.0, 1.0, 100.0, 101.0];
        let cfg = TreeConfig {
            max_leaf_nodes: 2,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(
            &FeatureMatrix::from_rows(&rows),
            &y,
            None,
            &cfg,
            None as NoRng,
        );
        assert!((tree.predict(&[0.0, 0.5]) - 0.5).abs() < 1e-9);
        assert!((tree.predict(&[1.0, 0.5]) - 100.5).abs() < 1e-9);
    }

    #[test]
    fn classifier_with_class_weights() {
        // 9 negatives at x=0, 1 positive at x=1: separable, both classified.
        let mut rows: Vec<Vec<f32>> = (0..9).map(|_| vec![0.0]).collect();
        rows.push(vec![1.0]);
        let mut labels = vec![false; 9];
        labels.push(true);
        let clf = TreeClassifier::fit(
            &FeatureMatrix::from_rows(&rows),
            &labels,
            Some((0.2, 0.8)),
            &TreeConfig::default(),
            None as NoRng,
        );
        assert!(!clf.predict(&[0.0]));
        assert!(clf.predict(&[1.0]));
        assert!(clf.predict_proba(&[1.0]) > 0.9);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let mut rng = StdRng::seed_from_u64(0);
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i % 2) as f32, ((i / 2) % 5) as f32, 0.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| f64::from(r[0])).collect();
        let cfg = TreeConfig {
            max_features: Some(2),
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(
            &FeatureMatrix::from_rows(&rows),
            &y,
            None,
            &cfg,
            Some(&mut rng),
        );
        // With max_features 2 of 3 per split and many split opportunities,
        // the informative feature is eventually used.
        assert!((tree.predict(&[1.0, 0.0, 0.0]) - 1.0).abs() < 0.2);
        assert!(tree.predict(&[0.0, 0.0, 0.0]) < 0.2);
    }
}
