//! The lint rules (L1–L8) and the machinery they share: `#[cfg(test)]`
//! region tracking, `// lint: allow(..)` directives, and finding reporting.
//!
//! Each rule is documented where it is implemented; `DESIGN.md` has the
//! rationale tied to the paper's pipeline.

use crate::lexer::{float_value, lex, Lexed, TokKind, Token};

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// NaN-unsafe float ordering: `partial_cmp(..).unwrap()/expect(..)`.
    L1,
    /// Panic surface in hot-path library code: `unwrap`/`expect`/`panic!`/
    /// arithmetic indexing.
    L2,
    /// Magic paper constant (20.0 / 30.0 / 40.0 / 13.5) outside
    /// `dlinfma-params`.
    L3,
    /// Direct `std::time::Instant` timing outside `crates/obs`.
    L4,
    /// `==` / `!=` on floats.
    L5,
    /// A `// lint: allow(<rule>)` directive with no reason string; a
    /// reasonless allow suppresses nothing, so it must either gain a reason
    /// or go.
    L6,
    /// Raw `std::thread::spawn` / `std::thread::scope` outside the
    /// workspace thread pool (`crates/pool`): all parallelism runs on the
    /// shared deterministic pool. Unlike the other rules this one fires in
    /// `#[cfg(test)]` regions too — ad-hoc threads in tests are exactly
    /// where unpooled concurrency sneaks back in.
    L7,
    /// String-literal span/metric/trace name passed to an obs sink
    /// (`span`, `counter`, `trace_span`, …) outside `crates/obs`: every
    /// event name lives once, in `dlinfma_obs::names` (or `obs::stage`),
    /// so traces keep stable names and dashboards never chase typos.
    L8,
}

impl Rule {
    /// The rule's display name (`L1` … `L5`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
            Rule::L8 => "L8",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            "L6" => Some(Rule::L6),
            "L7" => Some(Rule::L7),
            "L8" => Some(Rule::L8),
            _ => None,
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as displayed (workspace-relative when scanning the workspace).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    /// The `file:line: rule` key used by the baseline file.
    pub fn key(&self) -> String {
        format!("{}:{}: {}", self.file, self.line, self.rule.name())
    }

    /// Renders as `file:line: rule: message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Per-file lint context: which rules apply where.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx<'a> {
    /// Display path for findings.
    pub path: &'a str,
    /// L2 applies (hot-path crate src, or an explicitly named file).
    pub check_panics: bool,
    /// L3 exempt (the canonical constants module).
    pub is_params_module: bool,
    /// L4 exempt (the observability crate owns timing).
    pub is_obs_crate: bool,
    /// L7 exempt (the pool crate implements the threading it bans).
    pub is_pool_crate: bool,
}

/// Paper constants L3 guards, with the canonical replacement for each.
const PAPER_CONSTS: [(f64, &str); 4] = [
    (20.0, "dlinfma_params::D_MAX_M"),
    (
        30.0,
        "dlinfma_params::T_MIN_S (or TUNED_CLUSTER_DISTANCE_M)",
    ),
    (40.0, "dlinfma_params::CLUSTER_DISTANCE_M"),
    (13.5, "dlinfma_params::GPS_SAMPLE_INTERVAL_S"),
];

/// Lints one file's source text.
pub fn lint_source(src: &str, ctx: FileCtx) -> Vec<Finding> {
    let lexed = lex(src);
    let test_lines = test_regions(&lexed.tokens);

    let mut findings = Vec::new();
    let allows = allow_directives(&lexed, ctx, &mut findings);
    rule_l1(&lexed.tokens, ctx, &mut findings);
    if ctx.check_panics {
        rule_l2(&lexed.tokens, ctx, &mut findings);
    }
    if !ctx.is_params_module {
        rule_l3(&lexed.tokens, ctx, &mut findings);
    }
    if !ctx.is_obs_crate {
        rule_l4(&lexed.tokens, ctx, &mut findings);
    }
    rule_l5(&lexed.tokens, ctx, &mut findings);
    if !ctx.is_pool_crate {
        rule_l7(&lexed.tokens, ctx, &mut findings);
    }
    if !ctx.is_obs_crate {
        rule_l8(&lexed.tokens, ctx, &mut findings);
    }

    // L7 findings survive test regions (see its rule doc); everything else
    // is production-code-only. Allow directives apply to every rule.
    findings.retain(|f| {
        (f.rule == Rule::L7 || !in_test_region(&test_lines, f.line))
            && !allows
                .iter()
                .any(|(line, rule)| *rule == f.rule && *line == f.line)
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items (inclusive).
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match an outer attribute `#[ ... ]`.
        if tokens[i].text == "#" && i + 1 < tokens.len() && tokens[i + 1].text == "[" {
            let attr_start = i;
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut saw_test = false;
            let mut saw_not = false;
            // `#[cfg_attr(test, ..)]` items are NOT test-only; the attribute
            // merely applies in test builds.
            let mut saw_cfg_attr = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" => saw_test = true,
                    "not" => saw_not = true,
                    "cfg_attr" => saw_cfg_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_test && !saw_not && !saw_cfg_attr && j < tokens.len() {
                // Find the item extent: `;` before `{` → one-liner item,
                // otherwise the matched brace block.
                let start_line = tokens[attr_start].line;
                let mut k = j + 1;
                let mut end_line = start_line;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        ";" => {
                            end_line = tokens[k].line;
                            break;
                        }
                        "{" => {
                            let mut bdepth = 0usize;
                            while k < tokens.len() {
                                match tokens[k].text.as_str() {
                                    "{" => bdepth += 1,
                                    "}" => {
                                        bdepth -= 1;
                                        if bdepth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            end_line = tokens.get(k).map_or(start_line, |t| t.line);
                            break;
                        }
                        _ => k += 1,
                    }
                }
                regions.push((start_line, end_line.max(start_line)));
                i = k.max(j) + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    regions
}

fn in_test_region(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// Parses `// lint: allow(<rule>, <reason>)` directives. The reason is
/// mandatory: a directive naming a valid rule without one suppresses
/// nothing AND is itself reported (L6) — a silent no-op would read as
/// "suppressed" while the rule still fires. Each valid directive covers its
/// own line and the next line carrying code, so it can sit above or beside
/// the offending expression.
fn allow_directives(lexed: &Lexed, ctx: FileCtx, findings: &mut Vec<Finding>) -> Vec<(u32, Rule)> {
    let mut reasonless = |line: u32, rule: Rule| {
        findings.push(Finding {
            file: ctx.path.to_string(),
            line,
            rule: Rule::L6,
            message: format!(
                "`lint: allow({r})` has no reason and suppresses nothing; \
                 write `// lint: allow({r}, <why>)`",
                r = rule.name()
            ),
        });
    };
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(idx) = c.text.find("lint: allow(") else {
            continue;
        };
        let inner = &c.text[idx + "lint: allow(".len()..];
        let Some(close) = inner.rfind(')') else {
            continue;
        };
        let inner = &inner[..close];
        let Some((rule_txt, reason)) = inner.split_once(',') else {
            if let Some(rule) = Rule::parse(inner) {
                reasonless(c.line, rule);
            }
            continue;
        };
        let Some(rule) = Rule::parse(rule_txt) else {
            continue;
        };
        if reason.trim().is_empty() {
            reasonless(c.line, rule);
            continue;
        }
        out.push((c.line, rule));
        // Also cover the next line that has code (directive-above style).
        if let Some(next) = lexed.tokens.iter().map(|t| t.line).find(|&l| l > c.line) {
            out.push((next, rule));
        }
    }
    out
}

/// L1 — NaN-unsafe float ordering.
///
/// `partial_cmp` returns `None` for NaN, so `.unwrap()`/`.expect(..)` on it
/// is a latent panic on the exact inputs (haversine of antipodal points,
/// attention scores after overflow) where ordering matters most. The fix is
/// `f64::total_cmp`, which is total over NaN.
fn rule_l1(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "partial_cmp" || t.kind != TokKind::Ident {
            continue;
        }
        let Some(close) = match_paren(tokens, i + 1) else {
            continue;
        };
        if tokens.get(close + 1).map(|t| t.text.as_str()) == Some(".") {
            if let Some(next) = tokens.get(close + 2) {
                if next.text == "unwrap" || next.text == "expect" {
                    out.push(Finding {
                        file: ctx.path.to_string(),
                        line: t.line,
                        rule: Rule::L1,
                        message: format!(
                            "`partial_cmp(..).{}(..)` panics on NaN; use `f64::total_cmp`",
                            next.text
                        ),
                    });
                }
            }
        }
    }
}

/// L2 — panic surface in hot-path library code.
///
/// The pipeline crates on the serving path (`geo`, `traj`, `cluster`,
/// `core`, `store`, `ststore`) must not panic on bad data: a single
/// mis-annotated waybill must not take down a batch job. Flags `.unwrap()`,
/// `.expect(..)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` and
/// indexing whose subscript does arithmetic (`xs[i + 1]` — the classic
/// off-by-one panic). Plain `xs[i]` loop indexing is accepted.
fn rule_l2(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        match t.text.as_str() {
            "unwrap" | "expect" if prev == Some(".") && next == Some("(") => {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    rule: Rule::L2,
                    message: format!(
                        "`.{}(..)` in hot-path library code; return a Result or handle the None",
                        t.text
                    ),
                });
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next == Some("!") => {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    rule: Rule::L2,
                    message: format!(
                        "`{}!` in hot-path library code; return an error instead",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
    // Arithmetic subscripts: `expr[i + 1]` / `expr[n - k]`.
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "[" {
            continue;
        }
        let indexes_expr = i
            .checked_sub(1)
            .map(|p| {
                let prev = &tokens[p];
                prev.kind == TokKind::Ident && !is_keyword(&prev.text)
                    || prev.text == ")"
                    || prev.text == "]"
            })
            .unwrap_or(false);
        if !indexes_expr {
            continue;
        }
        let Some(close) = match_bracket(tokens, i) else {
            continue;
        };
        let inner = &tokens[i + 1..close];
        // Range subscripts (`xs[a..b]`) are slicing; still panicky but
        // overwhelmingly used with derived bounds — only flag arithmetic.
        let has_arith = inner
            .iter()
            .any(|t| t.kind == TokKind::Punct && (t.text == "+" || t.text == "-"));
        if has_arith && !inner.is_empty() {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L2,
                message: "arithmetic in index subscript can underflow/overflow and panic; \
                          use .get(..) or prove the bound"
                    .to_string(),
            });
        }
    }
}

/// L3 — magic paper constants.
///
/// D_max = 20 m, T_min = 30 s, D = 40 m and the 13.5 s sampling interval
/// define the pipeline's behaviour; every copy that drifts is a silent
/// correctness bug. They live once, in `dlinfma-params`.
fn rule_l3(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for t in tokens {
        let Some(v) = float_value(t) else { continue };
        for (c, replacement) in PAPER_CONSTS {
            if v == c {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    rule: Rule::L3,
                    message: format!("magic paper constant `{}`; use `{replacement}`", t.text),
                });
            }
        }
    }
}

/// L4 — timing outside the observability layer.
///
/// All wall-clock measurement flows through `crates/obs` (spans,
/// `Stopwatch`, `record_duration`) so stage latencies land in one exporter;
/// ad-hoc `Instant::now()` timings are invisible to the run report.
fn rule_l4(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for t in tokens {
        if t.kind == TokKind::Ident && t.text == "Instant" {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L4,
                message: "direct `Instant` timing outside crates/obs; \
                          use `obs::Stopwatch` / spans"
                    .to_string(),
            });
        }
    }
}

/// L5 — float equality.
///
/// `==`/`!=` against a float literal is almost always a rounding bug in the
/// making (distances and scores come out of transcendental functions).
/// Compare against an epsilon, or allow with a reason when exactness is
/// intended (e.g. a sentinel that is assigned, never computed).
fn rule_l5(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_side = [i.checked_sub(1).map(|p| &tokens[p]), tokens.get(i + 1)]
            .into_iter()
            .flatten()
            .any(|n| n.kind == TokKind::Float);
        if float_side {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L5,
                message: format!(
                    "`{}` against a float literal; compare with an epsilon or justify exactness",
                    t.text
                ),
            });
        }
    }
}

/// L7 — unpooled threads.
///
/// Every parallel stage runs on the shared `dlinfma-pool` work-stealing
/// pool so worker counts, determinism guarantees and caller-helps joining
/// hold workspace-wide. A raw `std::thread::spawn` / `std::thread::scope`
/// (or a `thread::Builder`) bypasses all of that. Only `crates/pool` itself
/// may touch `std::thread`.
fn rule_l7(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "thread" {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("::") {
            continue;
        }
        let Some(next) = tokens.get(i + 2) else {
            continue;
        };
        if matches!(next.text.as_str(), "spawn" | "scope" | "Builder") {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L7,
                message: format!(
                    "raw `thread::{}` outside crates/pool; run the work on the shared \
                     `dlinfma_pool::Pool` (scope/par_map) instead",
                    next.text
                ),
            });
        }
    }
}

/// Obs functions whose first argument is an event/metric name. Only exact
/// path-call forms (`obs::span(..)`, `dlinfma_obs::counter(..)`, `.scoped(..)`)
/// count, so unrelated local functions that happen to share a name and take
/// a string don't fire.
const OBS_NAME_SINKS: [&str; 11] = [
    "span",
    "scoped",
    "record_duration",
    "counter",
    "gauge",
    "histogram",
    "try_histogram",
    "trace_span",
    "trace_complete",
    "trace_instant",
    "trace_counter",
];

/// L8 — ad-hoc span/metric/trace names.
///
/// Every event name flows through the central registry
/// (`dlinfma_obs::names`, or the `obs::stage` constants) so Chrome traces
/// keep stable track/span names across refactors and the CI trace check can
/// pin them. A string literal passed straight to an obs sink creates an
/// unregistered name that silently forks the namespace.
fn rule_l8(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !OBS_NAME_SINKS.contains(&t.text.as_str()) {
            continue;
        }
        // Require a path or method call (`::ident(` / `.ident(`) so a local
        // `fn span(s: &str)` in some unrelated crate is out of scope.
        let is_call_path = i
            .checked_sub(1)
            .is_some_and(|p| tokens[p].text == "::" || tokens[p].text == ".");
        if !is_call_path {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let Some(arg) = tokens.get(i + 2) else {
            continue;
        };
        if arg.kind == TokKind::Literal {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L8,
                message: format!(
                    "string-literal name passed to `{}`; register it in \
                     `dlinfma_obs::names` and use the constant",
                    t.text
                ),
            });
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else" | "match" | "return" | "in" | "while" | "loop" | "for" | "let" | "mut"
    )
}

/// Index of the `)` matching the `(` expected at `open`; `None` when `open`
/// is not `(` or the parens are unbalanced.
fn match_paren(tokens: &[Token], open: usize) -> Option<usize> {
    if tokens.get(open)?.text != "(" {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileCtx<'static> {
        FileCtx {
            path: "test.rs",
            check_panics: true,
            is_params_module: false,
            is_obs_crate: false,
            is_pool_crate: false,
        }
    }

    fn rules_hit(src: &str) -> Vec<Rule> {
        let mut r: Vec<Rule> = lint_source(src, ctx())
            .into_iter()
            .map(|f| f.rule)
            .collect();
        r.dedup();
        r
    }

    #[test]
    fn l1_fires_on_partial_cmp_unwrap_and_expect() {
        // The unwrap also trips L2 (ctx is a hot-path crate); L1 is what this
        // test pins down.
        assert_eq!(
            rules_hit("fn f(a:f64,b:f64){ a.partial_cmp(&b).unwrap(); }"),
            [Rule::L1, Rule::L2]
        );
        assert_eq!(
            rules_hit("fn f(a:f64,b:f64){ a.partial_cmp(&b).expect(\"finite\"); }"),
            [Rule::L1, Rule::L2]
        );
        // total_cmp and unwrap_or are fine (unwrap_or is not `.unwrap(`).
        assert!(rules_hit("fn f(a:f64,b:f64){ a.total_cmp(&b); }").is_empty());
        assert!(!rules_hit(
            "fn f(a:f64,b:f64){ a.partial_cmp(&b).unwrap_or(core::cmp::Ordering::Equal); }"
        )
        .contains(&Rule::L1));
    }

    #[test]
    fn l2_fires_on_panics_and_arith_indexing() {
        assert_eq!(rules_hit("fn f(x: Option<u8>) { x.unwrap(); }"), [Rule::L2]);
        assert_eq!(rules_hit("fn f() { panic!(\"boom\"); }"), [Rule::L2]);
        assert_eq!(
            rules_hit("fn f(xs: &[u8], i: usize) { let _ = xs[i - 1]; }"),
            [Rule::L2]
        );
        assert!(rules_hit("fn f(xs: &[u8], i: usize) { let _ = xs[i]; }").is_empty());
        // Not in a hot-path crate → no L2.
        let mut c = ctx();
        c.check_panics = false;
        assert!(lint_source("fn f(x: Option<u8>) { x.unwrap(); }", c).is_empty());
    }

    #[test]
    fn l3_fires_on_paper_constants_only() {
        assert_eq!(rules_hit("const D: f64 = 20.0;"), [Rule::L3]);
        assert_eq!(rules_hit("let t = 13.5;"), [Rule::L3]);
        assert!(rules_hit("let x = 21.0; let n = 20; let r = 0..40;").is_empty());
        let mut c = ctx();
        c.is_params_module = true;
        assert!(lint_source("const D: f64 = 20.0;", c).is_empty());
    }

    #[test]
    fn l4_fires_on_instant_outside_obs() {
        assert_eq!(
            rules_hit("fn f() { let t = std::time::Instant::now(); }"),
            [Rule::L4]
        );
        let mut c = ctx();
        c.is_obs_crate = true;
        assert!(lint_source("fn f() { let t = std::time::Instant::now(); }", c).is_empty());
    }

    #[test]
    fn l5_fires_on_float_literal_comparison() {
        assert_eq!(rules_hit("fn f(x: f64) -> bool { x == 0.0 }"), [Rule::L5]);
        assert_eq!(rules_hit("fn f(x: f64) -> bool { 1.5 != x }"), [Rule::L5]);
        assert!(rules_hit("fn f(x: u8) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "fn f(x: f64) {}\n#[cfg(test)]\nmod tests {\n  fn g(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); let d = 20.0; }\n}\n";
        assert!(rules_hit(src).is_empty());
        // cfg(not(test)) is NOT a test region.
        let src = "#[cfg(not(test))]\nmod m {\n  pub fn g(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n}\n";
        assert_eq!(rules_hit(src), [Rule::L1, Rule::L2]);
    }

    #[test]
    fn test_attribute_on_fn_is_skipped() {
        let src = "#[test]\nfn t() { let d = 40.0; Some(1).unwrap(); }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let inline = "fn f() { let d = 20.0; } // lint: allow(L3, histogram bound, not D_max)";
        assert!(rules_hit(inline).is_empty());
        let above = "// lint: allow(L3, coincidental value)\nfn f() { let d = 20.0; }";
        assert!(rules_hit(above).is_empty());
        // Reason is mandatory: a bare allow does not suppress, and is
        // itself flagged.
        let bare = "fn f() { let d = 20.0; } // lint: allow(L3)";
        assert_eq!(rules_hit(bare), [Rule::L3, Rule::L6]);
        // Wrong rule does not suppress.
        let wrong = "fn f() { let d = 20.0; } // lint: allow(L5, nope)";
        assert_eq!(rules_hit(wrong), [Rule::L3]);
    }

    #[test]
    fn l6_fires_on_reasonless_allow_directives() {
        // Bare and empty-reason directives are findings even with nothing
        // to suppress.
        assert_eq!(rules_hit("fn f() {} // lint: allow(L2)"), [Rule::L6]);
        assert_eq!(rules_hit("fn f() {} // lint: allow(L2, )"), [Rule::L6]);
        // A reasoned directive or prose mentioning the syntax is fine.
        assert!(rules_hit("fn f() {} // lint: allow(L2, provably in range)").is_empty());
        assert!(
            rules_hit("// see `lint: allow(<rule>, <reason>)` in DESIGN.md\nfn f() {}").is_empty()
        );
    }

    #[test]
    fn l7_fires_on_raw_threads_even_in_tests() {
        assert_eq!(
            rules_hit("fn f() { std::thread::spawn(|| {}); }"),
            [Rule::L7]
        );
        assert_eq!(
            rules_hit("fn f() { std::thread::scope(|s| {}); }"),
            [Rule::L7]
        );
        assert_eq!(
            rules_hit("fn f() { std::thread::Builder::new(); }"),
            [Rule::L7]
        );
        // Unlike the other rules, a #[cfg(test)] region does not exempt.
        let in_tests = "#[cfg(test)]\nmod tests {\n  fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert_eq!(rules_hit(in_tests), [Rule::L7]);
        // Non-spawning thread APIs and the pool crate are fine.
        assert!(rules_hit("fn f() { std::thread::available_parallelism(); }").is_empty());
        let mut c = ctx();
        c.is_pool_crate = true;
        assert!(lint_source("fn f() { std::thread::spawn(|| {}); }", c).is_empty());
        // A reasoned allow still works.
        assert!(rules_hit(
            "fn f() { std::thread::spawn(|| {}); } // lint: allow(L7, detached watchdog)"
        )
        .is_empty());
    }

    #[test]
    fn l8_fires_on_literal_obs_names_only() {
        assert_eq!(
            rules_hit("fn f() { let _g = obs::span(\"ad-hoc\"); }"),
            [Rule::L8]
        );
        assert_eq!(
            rules_hit("fn f() { dlinfma_obs::counter(\"n\").add(1); }"),
            [Rule::L8]
        );
        assert_eq!(rules_hit("fn f() { obs::trace_span(\"x\"); }"), [Rule::L8]);
        // Registry constants, non-call mentions, and unrelated local
        // functions that share a sink name are all fine.
        assert!(rules_hit("fn f() { let _g = obs::span(names::ENGINE_INGEST); }").is_empty());
        assert!(rules_hit("fn f() { obs::record_duration(stage::RETRIEVAL, ns); }").is_empty());
        assert!(rules_hit("fn span(s: &str) {} fn f() { span(\"free function\"); }").is_empty());
        // The obs crate itself (registry + its docs/tests) is exempt.
        let mut c = ctx();
        c.is_obs_crate = true;
        assert!(lint_source("fn f() { obs::trace_span(\"x\"); }", c).is_empty());
    }

    #[test]
    fn comments_and_strings_never_trip_rules() {
        let src = "// partial_cmp(x).unwrap() and 20.0 and Instant\nfn f() { let s = \"panic! 40.0 Instant\"; }";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn findings_render_with_file_line_rule() {
        let f = &lint_source("fn f(a:f64,b:f64){ a.partial_cmp(&b).unwrap(); }", ctx())[0];
        assert_eq!(f.key(), "test.rs:1: L1");
        assert!(f.render().starts_with("test.rs:1: L1: "));
    }
}
