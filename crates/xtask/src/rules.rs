//! The lint rules (L1–L12) and the machinery they share: `#[cfg(test)]`
//! region tracking, `// lint: allow(..)` directives, and finding reporting.
//!
//! L1–L8 guard correctness and observability; L9–L12 form the determinism
//! audit: they flag the constructs (hash-order iteration, wall clock,
//! environment, thread identity, scheduling-order accumulation) that make
//! output a function of anything other than the input. Each rule is
//! documented where it is implemented; `DESIGN.md` has the rationale tied
//! to the paper's pipeline.

use crate::lexer::{float_value, lex, Lexed, TokKind, Token};
use std::collections::BTreeSet;
use std::time::Instant;

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// NaN-unsafe float ordering: `partial_cmp(..).unwrap()/expect(..)`.
    L1,
    /// Panic surface in hot-path library code: `unwrap`/`expect`/`panic!`/
    /// arithmetic indexing.
    L2,
    /// Magic paper constant (20.0 / 30.0 / 40.0 / 13.5) outside
    /// `dlinfma-params`.
    L3,
    /// Direct `std::time::Instant` timing outside `crates/obs`.
    L4,
    /// `==` / `!=` on floats.
    L5,
    /// A `// lint: allow(<rule>)` directive with no reason string; a
    /// reasonless allow suppresses nothing, so it must either gain a reason
    /// or go.
    L6,
    /// Raw `std::thread::spawn` / `std::thread::scope` outside the
    /// workspace thread pool (`crates/pool`): all parallelism runs on the
    /// shared deterministic pool. Unlike the other rules this one fires in
    /// `#[cfg(test)]` regions too — ad-hoc threads in tests are exactly
    /// where unpooled concurrency sneaks back in.
    L7,
    /// String-literal span/metric/trace name passed to an obs sink
    /// (`span`, `counter`, `trace_span`, …) outside `crates/obs`: every
    /// event name lives once, in `dlinfma_obs::names` (or `obs::stage`),
    /// so traces keep stable names and dashboards never chase typos.
    L8,
    /// Iteration over a std `HashMap`/`HashSet` (`for … in`, `.iter()`,
    /// `.keys()`, `.values()`, `.drain()`, `.into_iter()`, …): hash
    /// iteration order is randomized per process, so any order that can
    /// reach an artifact is a parity bug no fixed-seed test reliably
    /// catches. Sites that reduce order-insensitively (`count`/`sum`/
    /// `all`/…), sort in-chain or on the very next statement, or collect
    /// into an ordered container are accepted; everything else migrates to
    /// `dlinfma_detcol::{OrdMap, OrdSet}` or carries a reasoned allow.
    L9,
    /// `.collect()` into a std `HashMap`/`HashSet` (turbofish or
    /// type-ascribed binding): the freshly built container invites ordered
    /// consumption downstream; collect into `OrdMap`/`OrdSet` (or
    /// `BTreeMap`/`BTreeSet`) instead, or keep it lookup-only with a
    /// reasoned allow.
    L10,
    /// Shared-mutable accumulation inside a pool scope (`fetch_*`,
    /// `.lock()`, `Mutex`/`RwLock` construction within `.scope(..)` /
    /// `.par_map(..)` / `.par_chunks(..)` closures): results then depend on
    /// work-stealing scheduling order. Return per-task values and combine
    /// with the order-stable `par_map_reduce_ordered` instead.
    L11,
    /// Ambient process state in pipeline crates: `SystemTime`, `env::var`,
    /// `thread::current`. Output must be a pure function of input; obs owns
    /// the wall clock, pool owns thread identity, the CLI owns the
    /// environment (both crates are exempt).
    L12,
}

impl Rule {
    /// Every rule, in report order. Drives per-rule timing and the `--json`
    /// report.
    pub const ALL: [Rule; RULE_COUNT] = [
        Rule::L1,
        Rule::L2,
        Rule::L3,
        Rule::L4,
        Rule::L5,
        Rule::L6,
        Rule::L7,
        Rule::L8,
        Rule::L9,
        Rule::L10,
        Rule::L11,
        Rule::L12,
    ];

    /// Position in [`Rule::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The rule's display name (`L1` … `L12`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
            Rule::L8 => "L8",
            Rule::L9 => "L9",
            Rule::L10 => "L10",
            Rule::L11 => "L11",
            Rule::L12 => "L12",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s.trim())
    }
}

/// How many rules there are (`Rule::ALL.len()`).
pub const RULE_COUNT: usize = 12;

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as displayed (workspace-relative when scanning the workspace).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    /// The `file:line: rule` key used by the baseline file.
    pub fn key(&self) -> String {
        format!("{}:{}: {}", self.file, self.line, self.rule.name())
    }

    /// Renders as `file:line: rule: message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Per-file lint context: which rules apply where.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx<'a> {
    /// Display path for findings.
    pub path: &'a str,
    /// L2 applies (hot-path crate src, or an explicitly named file).
    pub check_panics: bool,
    /// L3 exempt (the canonical constants module).
    pub is_params_module: bool,
    /// L4 exempt (the observability crate owns timing).
    pub is_obs_crate: bool,
    /// L7 exempt (the pool crate implements the threading it bans).
    pub is_pool_crate: bool,
}

/// Paper constants L3 guards, with the canonical replacement for each.
const PAPER_CONSTS: [(f64, &str); 4] = [
    (20.0, "dlinfma_params::D_MAX_M"),
    (
        30.0,
        "dlinfma_params::T_MIN_S (or TUNED_CLUSTER_DISTANCE_M)",
    ),
    (40.0, "dlinfma_params::CLUSTER_DISTANCE_M"),
    (13.5, "dlinfma_params::GPS_SAMPLE_INTERVAL_S"),
];

/// One reasoned `// lint: allow(<rule>, <reason>)` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the directive sits on.
    pub line: u32,
    /// Rule it suppresses.
    pub rule: Rule,
    /// The (mandatory) reason text.
    pub reason: String,
    /// Lines the directive covers: its own plus the next line with code.
    pub covers: Vec<u32>,
}

/// Everything the linter knows about one file: the surviving findings plus
/// the reasoned-allow inventory the `--json` report publishes.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Findings after allow suppression and `#[cfg(test)]` filtering.
    pub findings: Vec<Finding>,
    /// All reasoned allow directives in the file (used and stale alike;
    /// stale ones additionally show up as L6 findings).
    pub allows: Vec<Allow>,
}

/// Lints one file's source text, returning the surviving findings.
#[cfg(test)]
pub fn lint_source(src: &str, ctx: FileCtx) -> Vec<Finding> {
    lint_file(src, ctx, None).findings
}

/// Lints one file's source text. When `timings` is given, per-rule wall
/// time in nanoseconds (indexed by [`Rule::index`]) is accumulated into it.
pub fn lint_file(src: &str, ctx: FileCtx, mut timings: Option<&mut [u64; RULE_COUNT]>) -> FileLint {
    let lexed = lex(src);
    let test_lines = test_regions(&lexed.tokens);

    let mut findings = Vec::new();
    macro_rules! timed {
        ($rule:expr, $body:expr) => {{
            let start = Instant::now();
            let result = $body;
            if let Some(t) = timings.as_deref_mut() {
                t[$rule.index()] += start.elapsed().as_nanos() as u64;
            }
            result
        }};
    }

    let allows = timed!(Rule::L6, allow_directives(&lexed, ctx, &mut findings));
    timed!(Rule::L1, rule_l1(&lexed.tokens, ctx, &mut findings));
    if ctx.check_panics {
        timed!(Rule::L2, rule_l2(&lexed.tokens, ctx, &mut findings));
    }
    if !ctx.is_params_module {
        timed!(Rule::L3, rule_l3(&lexed.tokens, ctx, &mut findings));
    }
    if !ctx.is_obs_crate {
        timed!(Rule::L4, rule_l4(&lexed.tokens, ctx, &mut findings));
    }
    timed!(Rule::L5, rule_l5(&lexed.tokens, ctx, &mut findings));
    if !ctx.is_pool_crate {
        timed!(Rule::L7, rule_l7(&lexed.tokens, ctx, &mut findings));
    }
    if !ctx.is_obs_crate {
        timed!(Rule::L8, rule_l8(&lexed.tokens, ctx, &mut findings));
    }
    timed!(Rule::L9, rule_l9(&lexed.tokens, ctx, &mut findings));
    timed!(Rule::L10, rule_l10(&lexed.tokens, ctx, &mut findings));
    if !ctx.is_pool_crate {
        timed!(Rule::L11, rule_l11(&lexed.tokens, ctx, &mut findings));
    }
    if !(ctx.is_obs_crate || ctx.is_pool_crate) {
        timed!(Rule::L12, rule_l12(&lexed.tokens, ctx, &mut findings));
    }

    // Stale-allow check (the L6 extension): a reasoned directive that
    // matches no finding on the lines it covers suppresses nothing — it
    // outlived its fix, and left in place it would silently mask the next
    // finding on that line. Checked against the pre-filter findings so a
    // directive that suppresses a test-region finding still counts as used.
    timed!(Rule::L6, {
        let stale: Vec<Finding> = allows
            .iter()
            .filter(|a| {
                !findings
                    .iter()
                    .any(|f| f.rule == a.rule && a.covers.contains(&f.line))
            })
            .map(|a| Finding {
                file: ctx.path.to_string(),
                line: a.line,
                rule: Rule::L6,
                message: format!(
                    "stale `lint: allow({r}, ..)`: no {r} finding on this or the next \
                     code line; delete the directive",
                    r = a.rule.name()
                ),
            })
            .collect();
        findings.extend(stale);
    });

    // L7 findings survive test regions (see its rule doc); everything else
    // is production-code-only. Allow directives apply to every rule.
    findings.retain(|f| {
        (f.rule == Rule::L7 || !in_test_region(&test_lines, f.line))
            && !allows
                .iter()
                .any(|a| a.rule == f.rule && a.covers.contains(&f.line))
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    FileLint { findings, allows }
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items (inclusive).
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match an outer attribute `#[ ... ]`.
        if tokens[i].text == "#" && i + 1 < tokens.len() && tokens[i + 1].text == "[" {
            let attr_start = i;
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut saw_test = false;
            let mut saw_not = false;
            // `#[cfg_attr(test, ..)]` items are NOT test-only; the attribute
            // merely applies in test builds.
            let mut saw_cfg_attr = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" => saw_test = true,
                    "not" => saw_not = true,
                    "cfg_attr" => saw_cfg_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_test && !saw_not && !saw_cfg_attr && j < tokens.len() {
                // Find the item extent: `;` before `{` → one-liner item,
                // otherwise the matched brace block.
                let start_line = tokens[attr_start].line;
                let mut k = j + 1;
                let mut end_line = start_line;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        ";" => {
                            end_line = tokens[k].line;
                            break;
                        }
                        "{" => {
                            let mut bdepth = 0usize;
                            while k < tokens.len() {
                                match tokens[k].text.as_str() {
                                    "{" => bdepth += 1,
                                    "}" => {
                                        bdepth -= 1;
                                        if bdepth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            end_line = tokens.get(k).map_or(start_line, |t| t.line);
                            break;
                        }
                        _ => k += 1,
                    }
                }
                regions.push((start_line, end_line.max(start_line)));
                i = k.max(j) + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    regions
}

fn in_test_region(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// Parses `// lint: allow(<rule>, <reason>)` directives. The reason is
/// mandatory: a directive naming a valid rule without one suppresses
/// nothing AND is itself reported (L6) — a silent no-op would read as
/// "suppressed" while the rule still fires. Each valid directive covers its
/// own line and the next line carrying code, so it can sit above or beside
/// the offending expression.
fn allow_directives(lexed: &Lexed, ctx: FileCtx, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut reasonless = |line: u32, rule: Rule| {
        findings.push(Finding {
            file: ctx.path.to_string(),
            line,
            rule: Rule::L6,
            message: format!(
                "`lint: allow({r})` has no reason and suppresses nothing; \
                 write `// lint: allow({r}, <why>)`",
                r = rule.name()
            ),
        });
    };
    let mut out: Vec<Allow> = Vec::new();
    for c in &lexed.comments {
        let Some(idx) = c.text.find("lint: allow(") else {
            continue;
        };
        let inner = &c.text[idx + "lint: allow(".len()..];
        let Some(close) = inner.rfind(')') else {
            continue;
        };
        let inner = &inner[..close];
        let Some((rule_txt, reason)) = inner.split_once(',') else {
            if let Some(rule) = Rule::parse(inner) {
                reasonless(c.line, rule);
            }
            continue;
        };
        let Some(rule) = Rule::parse(rule_txt) else {
            continue;
        };
        if reason.trim().is_empty() {
            reasonless(c.line, rule);
            continue;
        }
        // The directive covers its own line plus the next line that has
        // code (directive-above style).
        let mut covers = vec![c.line];
        if let Some(next) = lexed.tokens.iter().map(|t| t.line).find(|&l| l > c.line) {
            covers.push(next);
        }
        out.push(Allow {
            line: c.line,
            rule,
            reason: reason.trim().to_string(),
            covers,
        });
    }
    out
}

/// L1 — NaN-unsafe float ordering.
///
/// `partial_cmp` returns `None` for NaN, so `.unwrap()`/`.expect(..)` on it
/// is a latent panic on the exact inputs (haversine of antipodal points,
/// attention scores after overflow) where ordering matters most. The fix is
/// `f64::total_cmp`, which is total over NaN.
fn rule_l1(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "partial_cmp" || t.kind != TokKind::Ident {
            continue;
        }
        let Some(close) = match_paren(tokens, i + 1) else {
            continue;
        };
        if tokens.get(close + 1).map(|t| t.text.as_str()) == Some(".") {
            if let Some(next) = tokens.get(close + 2) {
                if next.text == "unwrap" || next.text == "expect" {
                    out.push(Finding {
                        file: ctx.path.to_string(),
                        line: t.line,
                        rule: Rule::L1,
                        message: format!(
                            "`partial_cmp(..).{}(..)` panics on NaN; use `f64::total_cmp`",
                            next.text
                        ),
                    });
                }
            }
        }
    }
}

/// L2 — panic surface in hot-path library code.
///
/// The pipeline crates on the serving path (`geo`, `traj`, `cluster`,
/// `core`, `store`, `ststore`) must not panic on bad data: a single
/// mis-annotated waybill must not take down a batch job. Flags `.unwrap()`,
/// `.expect(..)`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` and
/// indexing whose subscript does arithmetic (`xs[i + 1]` — the classic
/// off-by-one panic). Plain `xs[i]` loop indexing is accepted.
fn rule_l2(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        match t.text.as_str() {
            "unwrap" | "expect" if prev == Some(".") && next == Some("(") => {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    rule: Rule::L2,
                    message: format!(
                        "`.{}(..)` in hot-path library code; return a Result or handle the None",
                        t.text
                    ),
                });
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next == Some("!") => {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    rule: Rule::L2,
                    message: format!(
                        "`{}!` in hot-path library code; return an error instead",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
    // Arithmetic subscripts: `expr[i + 1]` / `expr[n - k]`.
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "[" {
            continue;
        }
        let indexes_expr = i
            .checked_sub(1)
            .map(|p| {
                let prev = &tokens[p];
                prev.kind == TokKind::Ident && !is_keyword(&prev.text)
                    || prev.text == ")"
                    || prev.text == "]"
            })
            .unwrap_or(false);
        if !indexes_expr {
            continue;
        }
        let Some(close) = match_bracket(tokens, i) else {
            continue;
        };
        let inner = &tokens[i + 1..close];
        // Range subscripts (`xs[a..b]`) are slicing; still panicky but
        // overwhelmingly used with derived bounds — only flag arithmetic.
        let has_arith = inner
            .iter()
            .any(|t| t.kind == TokKind::Punct && (t.text == "+" || t.text == "-"));
        if has_arith && !inner.is_empty() {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L2,
                message: "arithmetic in index subscript can underflow/overflow and panic; \
                          use .get(..) or prove the bound"
                    .to_string(),
            });
        }
    }
}

/// L3 — magic paper constants.
///
/// D_max = 20 m, T_min = 30 s, D = 40 m and the 13.5 s sampling interval
/// define the pipeline's behaviour; every copy that drifts is a silent
/// correctness bug. They live once, in `dlinfma-params`.
fn rule_l3(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for t in tokens {
        let Some(v) = float_value(t) else { continue };
        for (c, replacement) in PAPER_CONSTS {
            if v == c {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    rule: Rule::L3,
                    message: format!("magic paper constant `{}`; use `{replacement}`", t.text),
                });
            }
        }
    }
}

/// L4 — timing outside the observability layer.
///
/// All wall-clock measurement flows through `crates/obs` (spans,
/// `Stopwatch`, `record_duration`) so stage latencies land in one exporter;
/// ad-hoc `Instant::now()` timings are invisible to the run report.
fn rule_l4(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for t in tokens {
        if t.kind == TokKind::Ident && t.text == "Instant" {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L4,
                message: "direct `Instant` timing outside crates/obs; \
                          use `obs::Stopwatch` / spans"
                    .to_string(),
            });
        }
    }
}

/// L5 — float equality.
///
/// `==`/`!=` against a float literal is almost always a rounding bug in the
/// making (distances and scores come out of transcendental functions).
/// Compare against an epsilon, or allow with a reason when exactness is
/// intended (e.g. a sentinel that is assigned, never computed).
fn rule_l5(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_side = [i.checked_sub(1).map(|p| &tokens[p]), tokens.get(i + 1)]
            .into_iter()
            .flatten()
            .any(|n| n.kind == TokKind::Float);
        if float_side {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L5,
                message: format!(
                    "`{}` against a float literal; compare with an epsilon or justify exactness",
                    t.text
                ),
            });
        }
    }
}

/// L7 — unpooled threads.
///
/// Every parallel stage runs on the shared `dlinfma-pool` work-stealing
/// pool so worker counts, determinism guarantees and caller-helps joining
/// hold workspace-wide. A raw `std::thread::spawn` / `std::thread::scope`
/// (or a `thread::Builder`) bypasses all of that. Only `crates/pool` itself
/// may touch `std::thread`.
fn rule_l7(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "thread" {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("::") {
            continue;
        }
        let Some(next) = tokens.get(i + 2) else {
            continue;
        };
        if matches!(next.text.as_str(), "spawn" | "scope" | "Builder") {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L7,
                message: format!(
                    "raw `thread::{}` outside crates/pool; run the work on the shared \
                     `dlinfma_pool::Pool` (scope/par_map) instead",
                    next.text
                ),
            });
        }
    }
}

/// Obs functions whose first argument is an event/metric name. Only exact
/// path-call forms (`obs::span(..)`, `dlinfma_obs::counter(..)`, `.scoped(..)`)
/// count, so unrelated local functions that happen to share a name and take
/// a string don't fire.
const OBS_NAME_SINKS: [&str; 11] = [
    "span",
    "scoped",
    "record_duration",
    "counter",
    "gauge",
    "histogram",
    "try_histogram",
    "trace_span",
    "trace_complete",
    "trace_instant",
    "trace_counter",
];

/// L8 — ad-hoc span/metric/trace names.
///
/// Every event name flows through the central registry
/// (`dlinfma_obs::names`, or the `obs::stage` constants) so Chrome traces
/// keep stable track/span names across refactors and the CI trace check can
/// pin them. A string literal passed straight to an obs sink creates an
/// unregistered name that silently forks the namespace.
fn rule_l8(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !OBS_NAME_SINKS.contains(&t.text.as_str()) {
            continue;
        }
        // Require a path or method call (`::ident(` / `.ident(`) so a local
        // `fn span(s: &str)` in some unrelated crate is out of scope.
        let is_call_path = i
            .checked_sub(1)
            .is_some_and(|p| tokens[p].text == "::" || tokens[p].text == ".");
        if !is_call_path {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let Some(arg) = tokens.get(i + 2) else {
            continue;
        };
        if arg.kind == TokKind::Literal {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L8,
                message: format!(
                    "string-literal name passed to `{}`; register it in \
                     `dlinfma_obs::names` and use the constant",
                    t.text
                ),
            });
        }
    }
}

/// Methods that iterate a hash container (rule L9).
const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain members that make an L9 iteration site deterministic: reductions
/// whose result cannot depend on visit order, the sort family, and ordered
/// collection targets (matched both as methods and inside `collect::<..>`
/// turbofish).
const ORDER_INSENSITIVE_CHAIN: [&str; 21] = [
    "count",
    "sum",
    "product",
    "all",
    "any",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "OrdMap",
    "OrdSet",
];

/// For a `HashMap`/`HashSet` type token at `i`, the identifier it is
/// ascribed to (`name: [&][mut] [std::collections::] HashMap<..>` — covers
/// let bindings, fn params, struct fields and struct-literal inits), if any.
fn ascribed_name(tokens: &[Token], i: usize) -> Option<&str> {
    let mut j = i;
    while j >= 2
        && tokens[j - 1].text == "::"
        && matches!(tokens[j - 2].text.as_str(), "collections" | "std")
    {
        j -= 2;
    }
    while j >= 1
        && (matches!(tokens[j - 1].text.as_str(), "&" | "mut")
            || tokens[j - 1].kind == TokKind::Lifetime)
    {
        j -= 1;
    }
    if j >= 2
        && tokens[j - 1].text == ":"
        && tokens[j - 2].kind == TokKind::Ident
        && !is_keyword(&tokens[j - 2].text)
    {
        return Some(&tokens[j - 2].text);
    }
    None
}

/// Identifiers declared with a std hash container type anywhere in this
/// file: type ascriptions plus `name = HashMap::new()`-style constructor
/// bindings. Purely lexical and file-local by design — the linter has no
/// type information, so a name declared hash-typed once is treated as
/// hash-typed at every use site in the file.
fn hash_typed_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if let Some(n) = ascribed_name(tokens, i) {
            names.insert(n.to_string());
        }
        // `name = HashMap::new()` / `with_capacity` / `from` / `default`,
        // optionally through a `std::collections::` path prefix.
        let is_ctor = tokens.get(i + 1).map(|t| t.text.as_str()) == Some("::")
            && tokens.get(i + 2).is_some_and(|m| {
                matches!(
                    m.text.as_str(),
                    "new" | "with_capacity" | "from" | "default"
                )
            });
        if is_ctor {
            let mut j = i;
            while j >= 2
                && tokens[j - 1].text == "::"
                && matches!(tokens[j - 2].text.as_str(), "collections" | "std")
            {
                j -= 2;
            }
            if j >= 2
                && tokens[j - 1].text == "="
                && tokens[j - 2].kind == TokKind::Ident
                && !is_keyword(&tokens[j - 2].text)
            {
                names.insert(tokens[j - 2].text.clone());
            }
        }
    }
    names
}

/// Walks a method-call chain starting at the `.` at `dot`: returns every
/// chain method name plus any turbofish type identifiers (closure bodies
/// are skipped by jumping paren-to-paren), and the index just past the
/// final call's closing paren.
fn call_chain(tokens: &[Token], mut j: usize) -> (Vec<&str>, usize) {
    let mut names = Vec::new();
    while tokens.get(j).map(|t| t.text.as_str()) == Some(".") {
        let Some(m) = tokens.get(j + 1) else { break };
        if m.kind != TokKind::Ident {
            // Tuple access such as `.0` ends the chain for our purposes.
            break;
        }
        names.push(m.text.as_str());
        j += 2;
        if tokens.get(j).map(|t| t.text.as_str()) == Some("::")
            && tokens.get(j + 1).map(|t| t.text.as_str()) == Some("<")
        {
            // Turbofish: collect the type idents, then continue after `>`.
            j += 1;
            let mut depth = 0i32;
            while let Some(t) = tokens.get(j) {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {
                        if t.kind == TokKind::Ident {
                            names.push(t.text.as_str());
                        }
                    }
                }
                j += 1;
            }
        }
        match match_paren(tokens, j) {
            Some(close) => j = close + 1,
            None => break,
        }
    }
    (names, j)
}

/// True when the statement ending at `end` (expected to be `;`) is
/// immediately followed by `<ident>.sort*(..)` — the sanctioned
/// sort-at-the-boundary pattern for a collected hash iteration.
fn next_statement_sorts(tokens: &[Token], end: usize) -> bool {
    if tokens.get(end).map(|t| t.text.as_str()) != Some(";") {
        return false;
    }
    tokens
        .get(end + 1)
        .is_some_and(|r| r.kind == TokKind::Ident)
        && tokens.get(end + 2).map(|t| t.text.as_str()) == Some(".")
        && tokens
            .get(end + 3)
            .is_some_and(|m| m.text.starts_with("sort"))
        && tokens.get(end + 4).map(|t| t.text.as_str()) == Some("(")
}

/// L9 — hash-order iteration.
///
/// Iterating a std `HashMap`/`HashSet` visits entries in a per-process
/// random order; if that order can reach an artifact (a `Vec`, a report, a
/// file) the output stops being a pure function of the input and the parity
/// tests only catch it by seed luck. Detection is lexical: names declared
/// hash-typed in this file (ascription or constructor binding), flagged at
/// `for .. in name` and `name.iter()`-family sites unless the call chain
/// reduces order-insensitively, sorts, collects into an ordered container,
/// or the very next statement sorts the collected result.
fn rule_l9(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    let names = hash_typed_names(tokens);
    if names.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !names.contains(&t.text) {
            continue;
        }
        // `for pat in [&][mut] [recv.]name {`
        if tokens.get(i + 1).map(|n| n.text.as_str()) == Some("{") {
            let mut j = i;
            while j >= 2 && tokens[j - 1].text == "." && tokens[j - 2].kind == TokKind::Ident {
                j -= 2;
            }
            while j >= 1 && matches!(tokens[j - 1].text.as_str(), "&" | "mut") {
                j -= 1;
            }
            if j >= 1 && tokens[j - 1].text == "in" {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    rule: Rule::L9,
                    message: format!(
                        "`for .. in {}` iterates a std hash container in nondeterministic \
                         order; migrate to `dlinfma_detcol::OrdMap`/`OrdSet` or sort first",
                        t.text
                    ),
                });
                continue;
            }
        }
        // `name.iter()`-family method chains.
        if tokens.get(i + 1).map(|n| n.text.as_str()) != Some(".") {
            continue;
        }
        let Some(m) = tokens.get(i + 2) else { continue };
        if m.kind != TokKind::Ident || !HASH_ITER_METHODS.contains(&m.text.as_str()) {
            continue;
        }
        if tokens.get(i + 3).map(|n| n.text.as_str()) != Some("(") {
            continue;
        }
        let (chain, end) = call_chain(tokens, i + 1);
        if chain.iter().any(|c| ORDER_INSENSITIVE_CHAIN.contains(c)) {
            continue;
        }
        if next_statement_sorts(tokens, end) {
            continue;
        }
        out.push(Finding {
            file: ctx.path.to_string(),
            line: t.line,
            rule: Rule::L9,
            message: format!(
                "`{}.{}()` iterates a std hash container in nondeterministic order; \
                 consume order-insensitively, sort the result, or migrate to \
                 `dlinfma_detcol::OrdMap`/`OrdSet`",
                t.text, m.text
            ),
        });
    }
}

/// L10 — collecting into a hash container.
///
/// `.collect::<HashMap<..>>()` (or the type-ascribed equivalent) builds a
/// container whose iteration order is random; the collection point is where
/// the ordered alternative costs one type name, so that is where the rule
/// fires. Covers the turbofish form and `let name: HashMap<..> = ..
/// .collect();` bindings.
fn rule_l10(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    let mut flagged: BTreeSet<u32> = BTreeSet::new();
    let mut push = |line: u32, which: &str, out: &mut Vec<Finding>| {
        if flagged.insert(line) {
            out.push(Finding {
                file: ctx.path.to_string(),
                line,
                rule: Rule::L10,
                message: format!(
                    "`.collect()` into a std `{which}`; collect into \
                     `dlinfma_detcol::OrdMap`/`OrdSet` (or `BTreeMap`/`BTreeSet`) so \
                     downstream iteration is ordered, or keep it lookup-only with a \
                     reasoned allow"
                ),
            });
        }
    };
    // Turbofish form: `.collect::<[std::collections::]Hash{Map,Set}<..>>()`.
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "collect" {
            continue;
        }
        if i.checked_sub(1).map(|p| tokens[p].text.as_str()) != Some(".") {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("::")
            || tokens.get(i + 2).map(|t| t.text.as_str()) != Some("<")
        {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 2;
        while let Some(u) = tokens.get(j) {
            match u.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "HashMap" | "HashSet" if u.kind == TokKind::Ident => {
                    push(t.line, &u.text.clone(), out);
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Ascribed form: `let name: HashMap<..> = .. .collect();`.
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if ascribed_name(tokens, i).is_none() {
            continue;
        }
        // Skip the type's own generics; a binding has `=` at angle depth 0
        // before the declaration ends (a field/param ends at `,`/`;`/`)`).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut eq = None;
        while let Some(u) = tokens.get(j) {
            match u.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "=" if angle == 0 => {
                    eq = Some(j);
                    break;
                }
                "," | ";" | ")" | "{" | "}" if angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else { continue };
        // Scan the initializer (to its `;` at bracket depth 0) for `collect`.
        let mut j = eq + 1;
        let mut depth = 0i32;
        while let Some(u) = tokens.get(j) {
            match u.text.as_str() {
                "(" | "{" | "[" => depth += 1,
                ")" | "}" | "]" => depth -= 1,
                ";" if depth <= 0 => break,
                "collect" if u.kind == TokKind::Ident => {
                    push(u.line, &t.text.clone(), out);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// Pool entry points whose closures run on worker threads in scheduling
/// order (rule L11). `par_map_reduce_ordered` is the sanctioned ordered
/// reduction and is deliberately absent.
const POOL_SCOPE_METHODS: [&str; 3] = ["scope", "par_map", "par_chunks"];

/// L11 — shared-mutable accumulation inside pool scopes.
///
/// An `AtomicU64::fetch_add` or a locked accumulator inside `.scope(..)` /
/// `.par_map(..)` / `.par_chunks(..)` produces values in work-stealing
/// scheduling order: floating-point sums, Vec pushes and first-writer-wins
/// updates all become run-dependent. Tasks must return values; the caller
/// combines them in task order (`par_map` already is ordered;
/// `par_map_reduce_ordered` does the reduction).
fn rule_l11(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || !POOL_SCOPE_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if i.checked_sub(1).map(|p| tokens[p].text.as_str()) != Some(".") {
            continue;
        }
        let Some(close) = match_paren(tokens, i + 1) else {
            continue;
        };
        for j in i + 2..close {
            let u = &tokens[j];
            if u.kind != TokKind::Ident {
                continue;
            }
            let prev = tokens[j - 1].text.as_str();
            let next = tokens.get(j + 1).map(|t| t.text.as_str());
            let what = if u.text.starts_with("fetch_") && prev == "." && next == Some("(") {
                Some(format!("atomic `.{}(..)`", u.text))
            } else if u.text == "lock" && prev == "." && next == Some("(") {
                Some("`.lock()` accumulation".to_string())
            } else if matches!(u.text.as_str(), "Mutex" | "RwLock") && next == Some("::") {
                Some(format!("`{}` construction", u.text))
            } else {
                None
            };
            if let Some(what) = what {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: u.line,
                    rule: Rule::L11,
                    message: format!(
                        "{what} inside `.{}(..)`: shared-mutable accumulation depends on \
                         work-stealing scheduling order; return per-task values and reduce \
                         with `par_map_reduce_ordered`",
                        t.text
                    ),
                });
            }
        }
    }
}

/// L12 — ambient process state.
///
/// `SystemTime`, `env::var` and `thread::current` make pipeline output
/// depend on when/where/on-which-thread it ran instead of on the input.
/// Wall clock belongs to obs, thread identity to pool (both exempt), and
/// configuration enters through the CLI as explicit parameters.
fn rule_l12(tokens: &[Token], ctx: FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        let next2 = tokens.get(i + 2).map(|t| t.text.as_str());
        let what = match t.text.as_str() {
            "SystemTime" => Some("wall clock `SystemTime`"),
            "env"
                if next == Some("::")
                    && matches!(next2, Some("var" | "var_os" | "vars" | "vars_os")) =>
            {
                Some("environment read `env::var`")
            }
            "thread" if next == Some("::") && next2 == Some("current") => {
                Some("thread identity `thread::current()`")
            }
            _ => None,
        };
        if let Some(what) = what {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: Rule::L12,
                message: format!(
                    "{what} makes output depend on ambient process state; take the value \
                     as a parameter instead (obs owns the wall clock, the CLI owns the \
                     environment)"
                ),
            });
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else" | "match" | "return" | "in" | "while" | "loop" | "for" | "let" | "mut"
    )
}

/// Index of the `)` matching the `(` expected at `open`; `None` when `open`
/// is not `(` or the parens are unbalanced.
fn match_paren(tokens: &[Token], open: usize) -> Option<usize> {
    if tokens.get(open)?.text != "(" {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `]` matching the `[` at `open`.
fn match_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileCtx<'static> {
        FileCtx {
            path: "test.rs",
            check_panics: true,
            is_params_module: false,
            is_obs_crate: false,
            is_pool_crate: false,
        }
    }

    fn rules_hit(src: &str) -> Vec<Rule> {
        let mut r: Vec<Rule> = lint_source(src, ctx())
            .into_iter()
            .map(|f| f.rule)
            .collect();
        r.dedup();
        r
    }

    #[test]
    fn l1_fires_on_partial_cmp_unwrap_and_expect() {
        // The unwrap also trips L2 (ctx is a hot-path crate); L1 is what this
        // test pins down.
        assert_eq!(
            rules_hit("fn f(a:f64,b:f64){ a.partial_cmp(&b).unwrap(); }"),
            [Rule::L1, Rule::L2]
        );
        assert_eq!(
            rules_hit("fn f(a:f64,b:f64){ a.partial_cmp(&b).expect(\"finite\"); }"),
            [Rule::L1, Rule::L2]
        );
        // total_cmp and unwrap_or are fine (unwrap_or is not `.unwrap(`).
        assert!(rules_hit("fn f(a:f64,b:f64){ a.total_cmp(&b); }").is_empty());
        assert!(!rules_hit(
            "fn f(a:f64,b:f64){ a.partial_cmp(&b).unwrap_or(core::cmp::Ordering::Equal); }"
        )
        .contains(&Rule::L1));
    }

    #[test]
    fn l2_fires_on_panics_and_arith_indexing() {
        assert_eq!(rules_hit("fn f(x: Option<u8>) { x.unwrap(); }"), [Rule::L2]);
        assert_eq!(rules_hit("fn f() { panic!(\"boom\"); }"), [Rule::L2]);
        assert_eq!(
            rules_hit("fn f(xs: &[u8], i: usize) { let _ = xs[i - 1]; }"),
            [Rule::L2]
        );
        assert!(rules_hit("fn f(xs: &[u8], i: usize) { let _ = xs[i]; }").is_empty());
        // Not in a hot-path crate → no L2.
        let mut c = ctx();
        c.check_panics = false;
        assert!(lint_source("fn f(x: Option<u8>) { x.unwrap(); }", c).is_empty());
    }

    #[test]
    fn l3_fires_on_paper_constants_only() {
        assert_eq!(rules_hit("const D: f64 = 20.0;"), [Rule::L3]);
        assert_eq!(rules_hit("let t = 13.5;"), [Rule::L3]);
        assert!(rules_hit("let x = 21.0; let n = 20; let r = 0..40;").is_empty());
        let mut c = ctx();
        c.is_params_module = true;
        assert!(lint_source("const D: f64 = 20.0;", c).is_empty());
    }

    #[test]
    fn l4_fires_on_instant_outside_obs() {
        assert_eq!(
            rules_hit("fn f() { let t = std::time::Instant::now(); }"),
            [Rule::L4]
        );
        let mut c = ctx();
        c.is_obs_crate = true;
        assert!(lint_source("fn f() { let t = std::time::Instant::now(); }", c).is_empty());
    }

    #[test]
    fn l5_fires_on_float_literal_comparison() {
        assert_eq!(rules_hit("fn f(x: f64) -> bool { x == 0.0 }"), [Rule::L5]);
        assert_eq!(rules_hit("fn f(x: f64) -> bool { 1.5 != x }"), [Rule::L5]);
        assert!(rules_hit("fn f(x: u8) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "fn f(x: f64) {}\n#[cfg(test)]\nmod tests {\n  fn g(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); let d = 20.0; }\n}\n";
        assert!(rules_hit(src).is_empty());
        // cfg(not(test)) is NOT a test region.
        let src = "#[cfg(not(test))]\nmod m {\n  pub fn g(a: f64, b: f64) { a.partial_cmp(&b).unwrap(); }\n}\n";
        assert_eq!(rules_hit(src), [Rule::L1, Rule::L2]);
    }

    #[test]
    fn test_attribute_on_fn_is_skipped() {
        let src = "#[test]\nfn t() { let d = 40.0; Some(1).unwrap(); }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let inline = "fn f() { let d = 20.0; } // lint: allow(L3, histogram bound, not D_max)";
        assert!(rules_hit(inline).is_empty());
        let above = "// lint: allow(L3, coincidental value)\nfn f() { let d = 20.0; }";
        assert!(rules_hit(above).is_empty());
        // Reason is mandatory: a bare allow does not suppress, and is
        // itself flagged.
        let bare = "fn f() { let d = 20.0; } // lint: allow(L3)";
        assert_eq!(rules_hit(bare), [Rule::L3, Rule::L6]);
        // Wrong rule does not suppress — and, matching nothing, is stale.
        let wrong = "fn f() { let d = 20.0; } // lint: allow(L5, nope)";
        assert_eq!(rules_hit(wrong), [Rule::L3, Rule::L6]);
    }

    #[test]
    fn l6_fires_on_reasonless_allow_directives() {
        // Bare and empty-reason directives are findings even with nothing
        // to suppress.
        assert_eq!(rules_hit("fn f() {} // lint: allow(L2)"), [Rule::L6]);
        assert_eq!(rules_hit("fn f() {} // lint: allow(L2, )"), [Rule::L6]);
        // A reasoned directive that suppresses a real finding is fine, as is
        // prose mentioning the syntax.
        assert!(rules_hit(
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(L2, test helper)"
        )
        .is_empty());
        assert!(
            rules_hit("// see `lint: allow(<rule>, <reason>)` in DESIGN.md\nfn f() {}").is_empty()
        );
    }

    #[test]
    fn l6_flags_stale_allow_directives() {
        // A reasoned directive whose rule no longer fires on its lines is
        // stale: it suppresses nothing and would mask the next finding.
        let stale = "// lint: allow(L3, the constant moved away)\nfn f() -> u8 { 7 }";
        assert_eq!(rules_hit(stale), [Rule::L6]);
        let f = &lint_source(stale, ctx())[0];
        assert!(f.message.contains("stale"), "message: {}", f.message);
        // Inline-style stale directive too.
        assert_eq!(
            rules_hit("fn f() -> u8 { 7 } // lint: allow(L5, long gone)"),
            [Rule::L6]
        );
    }

    #[test]
    fn l7_fires_on_raw_threads_even_in_tests() {
        assert_eq!(
            rules_hit("fn f() { std::thread::spawn(|| {}); }"),
            [Rule::L7]
        );
        assert_eq!(
            rules_hit("fn f() { std::thread::scope(|s| {}); }"),
            [Rule::L7]
        );
        assert_eq!(
            rules_hit("fn f() { std::thread::Builder::new(); }"),
            [Rule::L7]
        );
        // Unlike the other rules, a #[cfg(test)] region does not exempt.
        let in_tests = "#[cfg(test)]\nmod tests {\n  fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert_eq!(rules_hit(in_tests), [Rule::L7]);
        // Non-spawning thread APIs and the pool crate are fine.
        assert!(rules_hit("fn f() { std::thread::available_parallelism(); }").is_empty());
        let mut c = ctx();
        c.is_pool_crate = true;
        assert!(lint_source("fn f() { std::thread::spawn(|| {}); }", c).is_empty());
        // A reasoned allow still works.
        assert!(rules_hit(
            "fn f() { std::thread::spawn(|| {}); } // lint: allow(L7, detached watchdog)"
        )
        .is_empty());
    }

    #[test]
    fn l8_fires_on_literal_obs_names_only() {
        assert_eq!(
            rules_hit("fn f() { let _g = obs::span(\"ad-hoc\"); }"),
            [Rule::L8]
        );
        assert_eq!(
            rules_hit("fn f() { dlinfma_obs::counter(\"n\").add(1); }"),
            [Rule::L8]
        );
        assert_eq!(rules_hit("fn f() { obs::trace_span(\"x\"); }"), [Rule::L8]);
        // Registry constants, non-call mentions, and unrelated local
        // functions that share a sink name are all fine.
        assert!(rules_hit("fn f() { let _g = obs::span(names::ENGINE_INGEST); }").is_empty());
        assert!(rules_hit("fn f() { obs::record_duration(stage::RETRIEVAL, ns); }").is_empty());
        assert!(rules_hit("fn span(s: &str) {} fn f() { span(\"free function\"); }").is_empty());
        // The obs crate itself (registry + its docs/tests) is exempt.
        let mut c = ctx();
        c.is_obs_crate = true;
        assert!(lint_source("fn f() { obs::trace_span(\"x\"); }", c).is_empty());
    }

    #[test]
    fn l9_fires_on_hash_iteration() {
        // for-loop over a hash-typed fn param.
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) { for (k, v) in m { let _ = (k, v); } }";
        assert_eq!(rules_hit(src), [Rule::L9]);
        // Method iteration on a constructor-bound local, through `self.`-style
        // receivers and `&mut`.
        let src = "fn f() { let mut m = std::collections::HashMap::new(); m.insert(1u8, 2u8); for v in m.values() { let _ = v; } }";
        assert_eq!(rules_hit(src), [Rule::L9]);
        let src = "struct S { m: HashMap<u8, u8> }\nimpl S { fn f(&mut self) { for v in &mut self.m { let _ = v; } } }";
        assert_eq!(rules_hit(src), [Rule::L9]);
        // Untracked (non-hash) names never fire.
        assert!(rules_hit("fn f(v: &Vec<u8>) { for x in v { let _ = x; } }").is_empty());
    }

    #[test]
    fn l9_accepts_order_insensitive_and_sorted_consumption() {
        // Order-insensitive reductions.
        assert!(rules_hit(
            "fn f(s: &HashSet<u32>) -> usize { s.iter().filter(|x| **x > 1).count() }"
        )
        .is_empty());
        assert!(rules_hit("fn f(m: &HashMap<u8, u64>) -> u64 { m.values().sum() }").is_empty());
        // Sort on the very next statement (the collect-then-sort boundary).
        let sorted = "fn f(m: &HashMap<u8, u8>) -> Vec<u8> { let mut v: Vec<u8> = m.keys().copied().collect(); v.sort_unstable(); v }";
        assert!(rules_hit(sorted).is_empty());
        // Collecting into an ordered container in-chain.
        assert!(rules_hit(
            "fn f(m: &HashMap<u8, u8>) -> std::collections::BTreeSet<u8> { m.keys().copied().collect::<std::collections::BTreeSet<u8>>() }"
        )
        .is_empty());
        // A reasoned allow survives.
        assert!(rules_hit(
            "fn f(m: &HashMap<u8, u8>) { for v in m.values() { let _ = v; } } // lint: allow(L9, lookup-only diagnostic)"
        )
        .is_empty());
    }

    #[test]
    fn l10_fires_on_hash_collects() {
        // Turbofish form.
        assert_eq!(
            rules_hit(
                "fn f(xs: &[u32]) -> usize { let s = xs.iter().copied().collect::<std::collections::HashSet<u32>>(); s.len() }"
            ),
            [Rule::L10]
        );
        // Type-ascribed binding form.
        assert_eq!(
            rules_hit(
                "fn f(xs: &[(u8, u8)]) -> usize { let m: std::collections::HashMap<u8, u8> = xs.iter().copied().collect(); m.len() }"
            ),
            [Rule::L10]
        );
        // Ordered targets and hash-typed fields without an initializer are
        // clean.
        assert!(rules_hit(
            "fn f(xs: &[u32]) -> std::collections::BTreeSet<u32> { xs.iter().copied().collect() }"
        )
        .is_empty());
        assert!(rules_hit("struct S { m: HashMap<u8, u8> }").is_empty());
    }

    #[test]
    fn l11_fires_on_shared_accumulation_in_pool_scopes() {
        let atomic = "fn f(pool: &Pool, xs: &[u64]) -> u64 { let t = AtomicU64::new(0); pool.scope(|s| { t.fetch_add(1, Ordering::Relaxed); }); t.load(Ordering::Relaxed) }";
        assert_eq!(rules_hit(atomic), [Rule::L11]);
        let locked = "fn f(pool: &Pool) { let r = Mutex::new(Vec::new()); pool.par_map(&[1u8], |x| { r.lock().push(*x); *x }); }";
        assert_eq!(rules_hit(locked), [Rule::L11]);
        // The ordered reduction path and non-pool call sites are sanctioned.
        assert!(rules_hit(
            "fn f(pool: &Pool, xs: &[u64]) -> u64 { pool.par_map_reduce_ordered(xs, |x| *x, |a, b| a + b) }"
        )
        .is_empty());
        assert!(rules_hit("fn f(t: &AtomicU64) { t.fetch_add(1, Ordering::Relaxed); }").is_empty());
        // The pool crate implements the machinery it guards.
        let mut c = ctx();
        c.is_pool_crate = true;
        assert!(lint_source(
            "fn f(p: &Pool, t: &AtomicU64) { p.scope(|s| { t.fetch_add(1, Ordering::Relaxed); }); }",
            c
        )
        .is_empty());
    }

    #[test]
    fn l12_fires_on_ambient_process_state() {
        assert_eq!(
            rules_hit("fn f() -> std::time::SystemTime { std::time::SystemTime::now() }"),
            [Rule::L12]
        );
        assert_eq!(
            rules_hit("fn f() -> bool { std::env::var(\"DLINFMA_DEBUG\").is_ok() }"),
            [Rule::L12]
        );
        assert_eq!(
            rules_hit("fn f() { let _t = std::thread::current(); }"),
            [Rule::L12]
        );
        // CLI args, `env!` and non-identity thread APIs are out of scope.
        assert!(rules_hit(
            "fn f() { let _ = std::env::args(); std::thread::available_parallelism(); }"
        )
        .is_empty());
        // obs and pool own their clocks and thread identities.
        let mut c = ctx();
        c.is_obs_crate = true;
        assert!(lint_source("fn f() { std::time::SystemTime::now(); }", c).is_empty());
        let mut c = ctx();
        c.is_pool_crate = true;
        assert!(lint_source("fn f() { std::thread::current(); }", c).is_empty());
    }

    #[test]
    fn rule_all_order_matches_index() {
        for (i, r) in Rule::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Rule::parse(r.name()), Some(r));
        }
    }

    #[test]
    fn lint_file_reports_allow_inventory_and_timings() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(L2, caller checks)";
        let mut ns = [0u64; RULE_COUNT];
        let lint = lint_file(src, ctx(), Some(&mut ns));
        assert!(lint.findings.is_empty());
        assert_eq!(lint.allows.len(), 1);
        assert_eq!(lint.allows[0].rule, Rule::L2);
        assert_eq!(lint.allows[0].reason, "caller checks");
        // Unconditional rules accumulated some time.
        assert!(ns[Rule::L2.index()] > 0 || ns[Rule::L5.index()] > 0 || ns.iter().any(|&n| n > 0));
    }

    #[test]
    fn comments_and_strings_never_trip_rules() {
        let src = "// partial_cmp(x).unwrap() and 20.0 and Instant\nfn f() { let s = \"panic! 40.0 Instant\"; }";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn findings_render_with_file_line_rule() {
        let f = &lint_source("fn f(a:f64,b:f64){ a.partial_cmp(&b).unwrap(); }", ctx())[0];
        assert_eq!(f.key(), "test.rs:1: L1");
        assert!(f.render().starts_with("test.rs:1: L1: "));
    }
}
