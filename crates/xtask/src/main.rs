//! `cargo run -p xtask -- lint` — the workspace's in-tree static analyzer.
//!
//! Twelve repo-specific rules (see [`rules`]; L9–L12 form the determinism
//! audit) run over every `crates/*/src` file with a hand-rolled
//! comment/string-aware tokenizer; findings print as
//! `file:line: rule: message` and make the process exit non-zero. A
//! committed baseline (`crates/xtask/lint.baseline`) can grandfather known
//! findings — it ships empty, and the CI step keeps it that way.
//!
//! Usage:
//!   cargo run -p xtask -- lint               # scan the workspace
//!   cargo run -p xtask -- lint --json        # same scan, JSON report on stdout
//!   cargo run -p xtask -- lint FILE...       # lint specific files, all rules
//!   cargo run -p xtask -- lint --fixtures    # self-check on seeded fixtures
//!   cargo run -p xtask -- trace-check FILE   # validate a Chrome-trace export

mod lexer;
mod report;
mod rules;

use report::{build_report, validate_lint_report, ReportInput};
use rules::{lint_file, Allow, FileCtx, FileLint, Finding, Rule, RULE_COUNT};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose library code must stay panic-free (rule L2): everything on
/// the batch/serving path that ingests real-world (mis-annotated) data —
/// including the snapshot codec, which decodes untrusted on-disk bytes.
const HOT_PATH_CRATES: [&str; 7] = ["geo", "traj", "cluster", "core", "store", "ststore", "snap"];

/// Directories under `crates/` that the workspace scan skips entirely: the
/// linter itself (its fixtures are intentional violations) and the bench
/// harness (timing code is its whole point).
const SKIPPED_CRATES: [&str; 2] = ["xtask", "bench"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(&args[1..]),
        Some("trace-check") => trace_check_command(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- lint [--fixtures] [FILE...]\n\
                 \x20      cargo run -p xtask -- trace-check FILE..."
            );
            ExitCode::from(2)
        }
    }
}

/// Validates Chrome trace-event files (`--trace-out` / bench artifacts):
/// well-formed JSON, matched begin/end pairs per thread, monotonic
/// non-negative timestamps. Exits non-zero on the first malformed file.
fn trace_check_command(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("xtask: trace-check needs at least one trace file");
        return ExitCode::from(2);
    }
    for p in paths {
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        };
        match dlinfma_obs::validate_chrome_trace(&text) {
            Ok(summary) => {
                println!(
                    "{p}: ok — {} events, {} threads, {} complete spans, {} names, {} dropped",
                    summary.events,
                    summary.threads,
                    summary.complete_spans,
                    summary.names.len(),
                    summary.dropped
                );
            }
            Err(e) => {
                eprintln!("{p}: INVALID trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn workspace_root() -> PathBuf {
    // crates/xtask → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

fn lint_command(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--fixtures") {
        return fixtures_self_check();
    }
    let json = args.iter().any(|a| a == "--json");
    let files: Vec<String> = args.iter().filter(|a| *a != "--json").cloned().collect();
    if !files.is_empty() {
        return lint_explicit_files(&files);
    }
    lint_workspace(json)
}

/// One full `crates/*/src` scan: every file linted, findings pre-baseline,
/// the reasoned-allow inventory, and per-rule timings.
struct WorkspaceScan {
    files: Vec<PathBuf>,
    findings: Vec<Finding>,
    allows: Vec<(String, Allow)>,
    timings: [u64; RULE_COUNT],
}

fn scan_workspace(root: &Path) -> Result<WorkspaceScan, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if SKIPPED_CRATES.contains(&name) {
            continue;
        }
        collect_rs_files(&dir.join("src"), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut allows = Vec::new();
    let mut timings = [0u64; RULE_COUNT];
    for file in &files {
        let lint = lint_one_timed(file, root, false, Some(&mut timings));
        let rel = display_path(file, root);
        findings.extend(lint.findings);
        allows.extend(lint.allows.into_iter().map(|a| (rel.clone(), a)));
    }
    Ok(WorkspaceScan {
        files,
        findings,
        allows,
        timings,
    })
}

/// Scans `crates/*/src`, applies the baseline, reports — as
/// `file:line: rule: message` lines, or as the JSON report (stdout) with a
/// per-rule timing table on stderr when `json` is set.
fn lint_workspace(json: bool) -> ExitCode {
    let root = workspace_root();
    let scan = match scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = load_baseline(&root);

    let mut seen_keys = BTreeSet::new();
    let mut surviving: Vec<Finding> = Vec::new();
    for f in &scan.findings {
        seen_keys.insert(f.key());
        if !baseline.contains(&f.key()) {
            surviving.push(f.clone());
        }
    }

    if json {
        let snippet = |f: &Finding| -> Option<String> {
            let text = std::fs::read_to_string(root.join(&f.file)).ok()?;
            text.lines()
                .nth(f.line.saturating_sub(1) as usize)
                .map(|l| l.trim().to_string())
        };
        let report = build_report(&ReportInput {
            files: scan.files.len(),
            findings: &surviving,
            allows: &scan.allows,
            timings: &scan.timings,
            snippet: &snippet,
        });
        let rendered = report.render_pretty();
        // Belt and braces: never emit a report that drifts from the shape
        // the self-tests pin.
        if let Err(e) = validate_lint_report(&rendered) {
            eprintln!("xtask: internal error: report failed golden-shape check: {e}");
            return ExitCode::from(2);
        }
        println!("{rendered}");
        for rule in Rule::ALL {
            let count = surviving.iter().filter(|f| f.rule == rule).count();
            eprintln!(
                "xtask: {:>4}  {} finding(s)  {} µs",
                rule.name(),
                count,
                scan.timings[rule.index()] / 1_000
            );
        }
    } else {
        for f in &surviving {
            println!("{}", f.render());
        }
    }
    for stale in baseline.difference(&seen_keys) {
        eprintln!("xtask: warning: stale baseline entry `{stale}` (no longer fires)");
    }
    if !surviving.is_empty() {
        eprintln!(
            "xtask: {} lint finding(s) in {} file(s) — fix, `// lint: allow(<rule>, <reason>)`, or baseline",
            surviving.len(),
            scan.files.len()
        );
        ExitCode::FAILURE
    } else {
        eprintln!(
            "xtask: lint clean ({} files, {} reasoned allows)",
            scan.files.len(),
            scan.allows.len()
        );
        ExitCode::SUCCESS
    }
}

/// Lints explicitly named files with every rule enabled (no baseline). This
/// is what the fixture acceptance check drives.
fn lint_explicit_files(paths: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut reported = 0usize;
    for p in paths {
        let path = PathBuf::from(p);
        let abs = if path.is_absolute() {
            path
        } else {
            root.join(&path)
        };
        if !abs.is_file() {
            eprintln!("xtask: no such file: {p}");
            return ExitCode::from(2);
        }
        for f in lint_one(&abs, &root, true).findings {
            println!("{}", f.render());
            reported += 1;
        }
    }
    if reported > 0 {
        eprintln!("xtask: {reported} lint finding(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs each seeded fixture through the linter and asserts that exactly its
/// rule fires — the linter linting itself.
fn fixtures_self_check() -> ExitCode {
    let root = workspace_root();
    let fixtures = FIXTURES;
    let mut ok = true;
    for (name, expected) in fixtures {
        let path = root.join("crates/xtask/fixtures").join(name);
        let findings = lint_one(&path, &root, true).findings;
        let hit = findings.iter().any(|f| f.rule == expected);
        let clean_of_noise = findings.iter().all(|f| f.rule == expected);
        if hit && clean_of_noise {
            println!(
                "fixture {name}: {} finding(s) of {} ✓",
                findings.len(),
                expected.name()
            );
        } else {
            ok = false;
            eprintln!(
                "fixture {name}: expected only {} findings, got: {:?}",
                expected.name(),
                findings.iter().map(|f| f.key()).collect::<Vec<_>>()
            );
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every seeded fixture with the one rule it must trip.
const FIXTURES: [(&str, Rule); 13] = [
    ("l1.rs", Rule::L1),
    ("l2.rs", Rule::L2),
    ("l3.rs", Rule::L3),
    ("l4.rs", Rule::L4),
    ("l5.rs", Rule::L5),
    ("l6.rs", Rule::L6),
    ("l6_stale.rs", Rule::L6),
    ("l7.rs", Rule::L7),
    ("l8.rs", Rule::L8),
    ("l9.rs", Rule::L9),
    ("l10.rs", Rule::L10),
    ("l11.rs", Rule::L11),
    ("l12.rs", Rule::L12),
];

fn display_path(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn lint_one(path: &Path, root: &Path, all_rules: bool) -> FileLint {
    lint_one_timed(path, root, all_rules, None)
}

fn lint_one_timed(
    path: &Path,
    root: &Path,
    all_rules: bool,
    timings: Option<&mut [u64; RULE_COUNT]>,
) -> FileLint {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask: cannot read {}: {e}", path.display());
            return FileLint::default();
        }
    };
    let rel_str = display_path(path, root);
    let crate_name = rel_str
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let ctx = FileCtx {
        path: &rel_str,
        check_panics: all_rules || HOT_PATH_CRATES.contains(&crate_name),
        is_params_module: rel_str == "crates/params/src/lib.rs",
        is_obs_crate: !all_rules && crate_name == "obs",
        is_pool_crate: !all_rules && crate_name == "pool",
    };
    lint_file(&src, ctx, timings)
}

fn load_baseline(root: &Path) -> BTreeSet<String> {
    let path = root.join("crates/xtask/lint.baseline");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return BTreeSet::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_contains_cargo_toml() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn every_fixture_trips_exactly_its_rule() {
        let root = workspace_root();
        for (name, rule) in FIXTURES {
            let path = root.join("crates/xtask/fixtures").join(name);
            let findings = lint_one(&path, &root, true).findings;
            assert!(
                !findings.is_empty() && findings.iter().all(|f| f.rule == rule),
                "fixture {name}: {:?}",
                findings.iter().map(|f| f.render()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn every_rule_has_a_fixture() {
        for rule in Rule::ALL {
            assert!(
                FIXTURES.iter().any(|&(_, r)| r == rule),
                "rule {} has no seeded fixture",
                rule.name()
            );
        }
    }

    #[test]
    fn workspace_scan_is_lint_clean() {
        // The committed tree must stay clean: this is the same check CI runs.
        let root = workspace_root();
        let scan = scan_workspace(&root).expect("workspace scan");
        let baseline = load_baseline(&root);
        let offending: Vec<String> = scan
            .findings
            .iter()
            .filter(|f| !baseline.contains(&f.key()))
            .map(|f| f.render())
            .collect();
        assert!(
            offending.is_empty(),
            "lint findings:\n{}",
            offending.join("\n")
        );
        // Every surviving allow directive carries a reason (the parser
        // rejects reasonless ones, so the inventory proves it).
        assert!(scan.allows.iter().all(|(_, a)| !a.reason.trim().is_empty()));
    }

    #[test]
    fn workspace_json_report_matches_golden_shape() {
        let root = workspace_root();
        let scan = scan_workspace(&root).expect("workspace scan");
        let baseline = load_baseline(&root);
        let surviving: Vec<Finding> = scan
            .findings
            .iter()
            .filter(|f| !baseline.contains(&f.key()))
            .cloned()
            .collect();
        let report = build_report(&ReportInput {
            files: scan.files.len(),
            findings: &surviving,
            allows: &scan.allows,
            timings: &scan.timings,
            snippet: &|_| None,
        });
        validate_lint_report(&report.render_pretty()).expect("golden shape");
    }

    #[test]
    fn baseline_file_is_committed_and_empty() {
        let path = workspace_root().join("crates/xtask/lint.baseline");
        let text = std::fs::read_to_string(&path).expect("baseline committed");
        assert!(
            text.lines()
                .all(|l| l.trim().is_empty() || l.trim().starts_with('#')),
            "baseline must stay empty; fix or allow instead of baselining"
        );
    }
}
