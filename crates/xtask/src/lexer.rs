//! A comment- and string-aware Rust tokenizer.
//!
//! This is deliberately not a full Rust lexer: the lint rules only need
//! identifiers, numeric literals, a handful of multi-character operators and
//! line numbers, with comments and string/char literals consumed correctly so
//! that `// partial_cmp` in prose or `"panic!"` in a message never trips a
//! rule. Comments are captured separately so the `// lint: allow(..)`
//! directives can be parsed per line.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`s, without the `r#`).
    Ident,
    /// Integer literal.
    Int,
    /// Floating-point literal (has a fraction, exponent or f32/f64 suffix).
    Float,
    /// String, raw-string, byte-string or char literal (contents dropped).
    Literal,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Punctuation; multi-character operators the rules need (`==`, `!=`,
    /// `::`, `..`, `->`, `=>`) come through as one token.
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Source text (for `Literal`, a placeholder; contents are irrelevant).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment with its line, used for `// lint: allow` directives. Block
/// comments yield one entry per line they span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line.
    pub line: u32,
    /// Text without the `//` / `/*` markers.
    pub text: String,
}

/// Tokenizer output: code tokens plus per-line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes Rust source. Unterminated strings/comments end the scan early
/// rather than erroring: lint rules degrade gracefully on malformed input
/// (rustc will reject it anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        s: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: Lexed::default(),
        line_had_code: false,
    }
    .run()
}

struct Lexer<'a> {
    s: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Lexed,
    /// Whether a code token has been emitted on the current line (to decide
    /// if a trailing comment "owns" its line).
    line_had_code: bool,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.s.len() {
            let c = self.s[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.line_had_code = false;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'\'' => self.char_or_lifetime(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.s.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: &str) {
        self.line_had_code = true;
        self.out.tokens.push(Token {
            kind,
            text: text.to_string(),
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.s.len() && self.s[end] != b'\n' {
            end += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            text: self.src[start..end]
                .trim_start_matches(['/', '!'])
                .trim()
                .to_string(),
        });
        self.pos = end;
    }

    fn block_comment(&mut self) {
        // Nested block comments, one Comment entry per line spanned.
        self.pos += 2;
        let mut depth = 1usize;
        let mut line_start = self.pos;
        while self.pos < self.s.len() && depth > 0 {
            match self.s[self.pos] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                b'\n' => {
                    self.emit_block_comment_line(line_start, self.pos);
                    self.line += 1;
                    self.pos += 1;
                    line_start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
        let end = self.pos.saturating_sub(2).max(line_start);
        self.emit_block_comment_line(line_start, end);
    }

    fn emit_block_comment_line(&mut self, start: usize, end: usize) {
        let text = self.src[start..end]
            .trim_matches(['*', ' ', '\t'])
            .to_string();
        self.out.comments.push(Comment {
            line: self.line,
            text,
        });
    }

    fn string(&mut self) {
        self.push(TokKind::Literal, "\"...\"");
        self.pos += 1;
        while self.pos < self.s.len() {
            match self.s[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` and raw idents
    /// (`r#match`). Returns false when the `r`/`b` starts a plain identifier,
    /// leaving the position untouched.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut i = self.pos + 1;
        if self.s[self.pos] == b'b' && self.s.get(i) == Some(&b'r') {
            i += 1;
        }
        let mut hashes = 0usize;
        while self.s.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if self.s.get(i) == Some(&b'"') {
            // Raw/byte string: scan to `"` followed by `hashes` hashes.
            self.push(TokKind::Literal, "r\"...\"");
            self.pos = i + 1;
            while self.pos < self.s.len() {
                if self.s[self.pos] == b'\n' {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                if self.s[self.pos] == b'"' {
                    let after = &self.s[self.pos + 1..];
                    if after.len() >= hashes && after[..hashes].iter().all(|&b| b == b'#') {
                        self.pos += 1 + hashes;
                        return true;
                    }
                }
                if self.s[self.pos] == b'\\' && hashes == 0 && self.s[self.pos - 1] != b'r' {
                    // Raw strings have no escapes; this branch only guards
                    // byte strings `b"..\""`.
                }
                self.pos += 1;
            }
            return true;
        }
        if self.s[self.pos] == b'r' && hashes == 1 {
            // Raw identifier r#ident.
            if let Some(c) = self.s.get(i) {
                if *c == b'_' || c.is_ascii_alphabetic() {
                    self.pos = i;
                    self.ident();
                    return true;
                }
            }
        }
        false
    }

    fn char_or_lifetime(&mut self) {
        // `'a` / `'static` are lifetimes unless a closing quote follows
        // (`'a'`). Everything else (`'\n'`, `'\u{1F600}'`, `'('`) is a char.
        let next = self.peek(1);
        let is_lifetime_start = matches!(next, Some(c) if c == b'_' || c.is_ascii_alphabetic());
        if is_lifetime_start {
            let mut i = self.pos + 2;
            while matches!(self.s.get(i), Some(c) if *c == b'_' || c.is_ascii_alphanumeric()) {
                i += 1;
            }
            if self.s.get(i) != Some(&b'\'') {
                let text = self.src[self.pos..i].to_string();
                self.push(TokKind::Lifetime, &text);
                self.pos = i;
                return;
            }
        }
        // Char literal.
        self.push(TokKind::Literal, "'.'");
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            self.pos += 2;
            // `\u{...}` escapes run to the closing brace.
            while self.pos < self.s.len() && self.s[self.pos] != b'\'' {
                self.pos += 1;
            }
        } else {
            // One (possibly multi-byte) character.
            self.pos += 1;
            while self.pos < self.s.len() && (self.s[self.pos] & 0xC0) == 0x80 {
                self.pos += 1;
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        let text = self.src[start..self.pos].to_string();
        self.push(TokKind::Ident, &text);
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut is_float = false;
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            // Radix literal: never a float.
            self.pos += 2;
            while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                self.pos += 1;
            }
        } else {
            while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_digit()) {
                self.pos += 1;
            }
            // A fraction only if `.` is followed by a digit (so `0..n` and
            // `1.max(x)` stay integers).
            if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.pos += 1;
                while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else if self.peek(0) == Some(b'.')
                && !matches!(self.peek(1), Some(c) if c == b'.' || c == b'_' || c.is_ascii_alphabetic())
            {
                // Trailing-dot float `1.`
                is_float = true;
                self.pos += 1;
            }
            // Exponent.
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let mut i = self.pos + 1;
                if matches!(self.s.get(i), Some(b'+' | b'-')) {
                    i += 1;
                }
                if matches!(self.s.get(i), Some(c) if c.is_ascii_digit()) {
                    is_float = true;
                    self.pos = i;
                    while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_digit()) {
                        self.pos += 1;
                    }
                }
            }
            // Type suffix (f64 makes it a float; u32/i64/usize don't).
            let suffix_start = self.pos;
            while matches!(self.peek(0), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                self.pos += 1;
            }
            let suffix = &self.src[suffix_start..self.pos];
            if suffix.starts_with('f') {
                is_float = true;
            }
        }
        let text = self.src[start..self.pos].to_string();
        self.push(
            if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            },
            &text,
        );
    }

    fn punct(&mut self) {
        // Greedy match of the multi-char operators the rules care about.
        const MULTI: [&str; 9] = ["==", "!=", "<=", ">=", "->", "=>", "::", "..=", ".."];
        let rest = &self.src[self.pos..];
        for op in MULTI {
            if rest.starts_with(op) {
                self.push(TokKind::Punct, op);
                self.pos += op.len();
                return;
            }
        }
        let ch = self.src[self.pos..].chars().next().unwrap_or('\u{FFFD}');
        let text = ch.to_string();
        self.push(TokKind::Punct, &text);
        self.pos += ch.len_utf8();
    }
}

/// Parsed numeric value of a float token, with `_` separators and any type
/// suffix stripped. `None` for non-floats or unparseable text.
pub fn float_value(tok: &Token) -> Option<f64> {
    if tok.kind != TokKind::Float {
        return None;
    }
    let cleaned: String = tok
        .text
        .replace('_', "")
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .to_string();
    cleaned.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_produce_code_tokens() {
        let l = lex("let x = \"partial_cmp\"; // partial_cmp here\n/* unwrap() */ y");
        let idents: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "y"]);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "partial_cmp here");
    }

    #[test]
    fn raw_strings_and_chars_are_opaque() {
        let l = lex(r###"let s = r#"unwrap() "quoted" panic!"#; let c = '"'; let l = 'a';"###);
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "panic"));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            3
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a f64) -> &'a f64 { x }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            3
        );
        assert!(l.tokens.iter().all(|t| t.kind != TokKind::Literal));
    }

    #[test]
    fn numbers_classify_ints_and_floats() {
        let toks = kinds(
            "let a = 20.0; let b = 20; let r = 0..13; let h = 0x14; let f = 2e1; let g = 1f64;",
        );
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["20.0", "2e1", "1f64"]);
        let l = lex("x = 13.5;");
        assert_eq!(float_value(&l.tokens[2]), Some(13.5));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = kinds("if a == b && c != 0.0 { a..=b; x::y }");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&"..="));
        assert!(puncts.contains(&"::"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let l = lex("a\n\"x\ny\"\n/* b\nc */\nz");
        let z = l.tokens.iter().find(|t| t.text == "z").unwrap();
        assert_eq!(z.line, 6);
    }

    #[test]
    fn raw_strings_with_extra_hashes_swallow_inner_terminators() {
        // `"#` inside an `r##`-string would close an `r#`-string; only the
        // matching `"##` may terminate. Everything inside is opaque.
        let l = lex(r####"let s = r##"one "# two "quoted" unwrap()"##; done"####);
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "two"));
        let idents: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "done"]);
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        // Rust block comments nest: the first `*/` closes the inner comment,
        // not the outer one. `mid` must stay commented out; `after` must not.
        let l = lex("before /* outer /* inner */ mid */ after");
        let idents: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["before", "after"]);
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate_in_one_snippet() {
        // `'a` (lifetime) vs `'a'` (char), an escaped-quote char `'\''`, and
        // a lifetime bound immediately followed by a char literal.
        let l = lex(r"fn f<'a>(x: &'a str) -> char { let q = '\''; let c = 'a'; q.max(c) }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        // Char literals are stored opaquely (as `'.'`), so count them
        // rather than reading their text back.
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn shift_right_stays_two_angle_tokens() {
        // Angle-depth scans (L10's turbofish walk) rely on `>>` never being
        // fused into one punct token.
        let toks = kinds("let m = a.collect::<Vec<Vec<u8>>>();");
        assert!(toks.iter().all(|(k, t)| *k != TokKind::Punct || t != ">>"));
    }
}
