//! The machine-readable lint report (`cargo run -p xtask -- lint --json`)
//! and its golden-shape validator.
//!
//! CI captures the rendered report as `LINT_report.json` and uploads it as
//! an artifact, so the shape is a contract: `schema` pins the version, and
//! [`validate_lint_report`] (exercised by self-tests against the live
//! workspace scan) rejects any drift before a consumer sees it.

use crate::rules::{Allow, Finding, Rule, RULE_COUNT};
use dlinfma_obs::JsonValue;

/// Schema tag the report carries; bump when the shape changes.
pub const LINT_REPORT_SCHEMA: &str = "dlinfma-lint-report-v1";

/// Everything the JSON report needs from a workspace scan.
pub struct ReportInput<'a> {
    /// Number of files scanned.
    pub files: usize,
    /// Findings that survived the baseline (what the human mode prints).
    pub findings: &'a [Finding],
    /// Reasoned allow directives across the scan, with their file paths.
    pub allows: &'a [(String, Allow)],
    /// Per-rule wall time in nanoseconds, indexed by [`Rule::index`].
    pub timings: &'a [u64; RULE_COUNT],
    /// Looks up the source line text for a finding (for the `snippet`
    /// field); returns `None` when the file cannot be read.
    pub snippet: &'a dyn Fn(&Finding) -> Option<String>,
}

/// Builds the report tree. Rendering is the caller's choice
/// (`render_pretty` for the artifact).
pub fn build_report(input: &ReportInput) -> JsonValue {
    let findings = input
        .findings
        .iter()
        .map(|f| {
            JsonValue::Obj(vec![
                ("rule".into(), JsonValue::Str(f.rule.name().into())),
                ("file".into(), JsonValue::Str(f.file.clone())),
                ("line".into(), JsonValue::Num(f.line as f64)),
                (
                    "snippet".into(),
                    JsonValue::Str((input.snippet)(f).unwrap_or_default()),
                ),
                ("message".into(), JsonValue::Str(f.message.clone())),
            ])
        })
        .collect();
    let allows = input
        .allows
        .iter()
        .map(|(file, a)| {
            JsonValue::Obj(vec![
                ("rule".into(), JsonValue::Str(a.rule.name().into())),
                ("file".into(), JsonValue::Str(file.clone())),
                ("line".into(), JsonValue::Num(a.line as f64)),
                ("reason".into(), JsonValue::Str(a.reason.clone())),
            ])
        })
        .collect();
    let rules = Rule::ALL
        .into_iter()
        .map(|r| {
            let count = input.findings.iter().filter(|f| f.rule == r).count();
            JsonValue::Obj(vec![
                ("rule".into(), JsonValue::Str(r.name().into())),
                ("findings".into(), JsonValue::Num(count as f64)),
                (
                    "micros".into(),
                    JsonValue::Num((input.timings[r.index()] / 1_000) as f64),
                ),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("schema".into(), JsonValue::Str(LINT_REPORT_SCHEMA.into())),
        ("files".into(), JsonValue::Num(input.files as f64)),
        ("clean".into(), JsonValue::Bool(input.findings.is_empty())),
        ("findings".into(), JsonValue::Arr(findings)),
        ("allows".into(), JsonValue::Arr(allows)),
        ("rules".into(), JsonValue::Arr(rules)),
    ])
}

/// Validates a rendered report against the golden shape: schema tag,
/// required keys with the right types, one `rules` entry per rule in
/// [`Rule::ALL`] order, and `clean` consistent with `findings`.
pub fn validate_lint_report(text: &str) -> Result<(), String> {
    let v = JsonValue::parse(text)
        .map_err(|e| format!("not JSON: {} at byte {}", e.message, e.offset))?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing `schema`")?;
    if schema != LINT_REPORT_SCHEMA {
        return Err(format!(
            "schema `{schema}`, expected `{LINT_REPORT_SCHEMA}`"
        ));
    }
    v.get("files")
        .and_then(JsonValue::as_f64)
        .filter(|&n| n >= 0.0 && n.fract() == 0.0)
        .ok_or("`files` must be a non-negative integer")?;
    let clean = v
        .get("clean")
        .and_then(JsonValue::as_bool)
        .ok_or("`clean` must be a bool")?;

    let findings = v
        .get("findings")
        .and_then(JsonValue::as_array)
        .ok_or("`findings` must be an array")?;
    for (i, f) in findings.iter().enumerate() {
        for key in ["rule", "file", "snippet", "message"] {
            f.get(key)
                .and_then(JsonValue::as_str)
                .ok_or(format!("findings[{i}].{key} must be a string"))?;
        }
        f.get("line")
            .and_then(JsonValue::as_f64)
            .filter(|&n| n >= 1.0)
            .ok_or(format!("findings[{i}].line must be a positive number"))?;
    }
    if clean != findings.is_empty() {
        return Err("`clean` disagrees with `findings`".into());
    }

    let allows = v
        .get("allows")
        .and_then(JsonValue::as_array)
        .ok_or("`allows` must be an array")?;
    for (i, a) in allows.iter().enumerate() {
        for key in ["rule", "file", "reason"] {
            a.get(key)
                .and_then(JsonValue::as_str)
                .filter(|s| !s.is_empty())
                .ok_or(format!("allows[{i}].{key} must be a non-empty string"))?;
        }
        a.get("line")
            .and_then(JsonValue::as_f64)
            .filter(|&n| n >= 1.0)
            .ok_or(format!("allows[{i}].line must be a positive number"))?;
    }

    let rules = v
        .get("rules")
        .and_then(JsonValue::as_array)
        .ok_or("`rules` must be an array")?;
    if rules.len() != RULE_COUNT {
        return Err(format!(
            "`rules` has {} entries, expected {RULE_COUNT}",
            rules.len()
        ));
    }
    for (entry, rule) in rules.iter().zip(Rule::ALL) {
        let name = entry
            .get("rule")
            .and_then(JsonValue::as_str)
            .ok_or("rules[].rule must be a string")?;
        if name != rule.name() {
            return Err(format!(
                "rules[] out of order: `{name}` where `{}` expected",
                rule.name()
            ));
        }
        for key in ["findings", "micros"] {
            entry
                .get(key)
                .and_then(JsonValue::as_f64)
                .filter(|&n| n >= 0.0)
                .ok_or(format!("rules[].{key} must be a non-negative number"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> (Vec<Finding>, Vec<(String, Allow)>, [u64; RULE_COUNT]) {
        let findings = vec![Finding {
            file: "crates/demo/src/lib.rs".into(),
            line: 3,
            rule: Rule::L9,
            message: "iterates a std hash container".into(),
        }];
        let allows = vec![(
            "crates/demo/src/lib.rs".into(),
            Allow {
                line: 9,
                rule: Rule::L2,
                reason: "caller checks".into(),
                covers: vec![9, 10],
            },
        )];
        (findings, allows, [1_500; RULE_COUNT])
    }

    #[test]
    fn built_report_passes_validation() {
        let (findings, allows, timings) = sample_input();
        let report = build_report(&ReportInput {
            files: 42,
            findings: &findings,
            allows: &allows,
            timings: &timings,
            snippet: &|_| Some("for v in m.values() {".into()),
        });
        let text = report.render_pretty();
        validate_lint_report(&text).expect("golden shape");
        assert!(text.contains("dlinfma-lint-report-v1"));
        assert!(text.contains("\"clean\": false"));
    }

    #[test]
    fn empty_report_is_clean_and_valid() {
        let report = build_report(&ReportInput {
            files: 0,
            findings: &[],
            allows: &[],
            timings: &[0; RULE_COUNT],
            snippet: &|_| None,
        });
        validate_lint_report(&report.render()).expect("golden shape");
        assert!(report.get("clean").and_then(JsonValue::as_bool).unwrap());
    }

    #[test]
    fn validation_rejects_shape_drift() {
        // Not JSON at all.
        assert!(validate_lint_report("nope").is_err());
        // Wrong schema tag.
        assert!(validate_lint_report(
            "{\"schema\":\"v0\",\"files\":1,\"clean\":true,\"findings\":[],\"allows\":[],\"rules\":[]}"
        )
        .is_err());
        // Right tag but a truncated rules table.
        assert!(validate_lint_report(
            "{\"schema\":\"dlinfma-lint-report-v1\",\"files\":1,\"clean\":true,\
             \"findings\":[],\"allows\":[],\"rules\":[]}"
        )
        .is_err());
        // `clean` must agree with `findings`.
        let (findings, allows, timings) = sample_input();
        let mut report = build_report(&ReportInput {
            files: 1,
            findings: &findings,
            allows: &allows,
            timings: &timings,
            snippet: &|_| None,
        });
        if let JsonValue::Obj(entries) = &mut report {
            for (k, v) in entries.iter_mut() {
                if k == "clean" {
                    *v = JsonValue::Bool(true);
                }
            }
        }
        assert!(validate_lint_report(&report.render()).is_err());
    }
}
