// Seeded violation for rule L10: collecting into a std hash container.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l10.rs` must exit non-zero.

use std::collections::{HashMap, HashSet};

pub fn index_waybills(pairs: &[(u64, u64)]) -> usize {
    let by_addr: HashMap<u64, u64> = pairs.iter().copied().collect();
    by_addr.len()
}

pub fn distinct_trips(ids: &[u64]) -> usize {
    ids.iter().copied().collect::<HashSet<u64>>().len()
}
