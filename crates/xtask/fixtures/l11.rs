// Seeded violation for rule L11: shared-mutable accumulation inside pool
// scopes (results then depend on work-stealing scheduling order).
// `cargo run -p xtask -- lint crates/xtask/fixtures/l11.rs` must exit non-zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub fn stay_count(pool: &dlinfma_pool::Pool, trips: &[u64]) -> u64 {
    let total = AtomicU64::new(0);
    pool.scope(|_s| {
        for t in trips {
            total.fetch_add(*t, Ordering::Relaxed);
        }
    });
    total.load(Ordering::Relaxed)
}

pub fn gather(pool: &dlinfma_pool::Pool, xs: &[u64]) -> Vec<u64> {
    let acc = Mutex::new(Vec::new());
    pool.par_chunks(xs, 64, |chunk| {
        if let Ok(mut grabbed) = acc.lock() {
            grabbed.extend_from_slice(chunk);
        }
    });
    acc.into_inner().unwrap_or_default()
}
