// Seeded violation for rule L5: float equality.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l5.rs` must exit non-zero.

pub fn is_unvisited(reach_distance: f64) -> bool {
    reach_distance == 0.0
}

pub fn has_moved(delta_m: f64) -> bool {
    delta_m != 0.0
}
