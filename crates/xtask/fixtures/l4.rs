// Seeded violation for rule L4: ad-hoc timing outside crates/obs.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l4.rs` must exit non-zero.

use std::time::Instant;

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}
