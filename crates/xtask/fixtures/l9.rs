// Seeded violation for rule L9: std hash-container iteration whose order
// can reach an artifact.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l9.rs` must exit non-zero.

use std::collections::HashMap;

pub fn candidate_order(by_addr: &HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (addr, building) in by_addr {
        out.push(addr ^ building);
    }
    out
}

pub fn building_ids(by_addr: &HashMap<u64, u64>) -> Vec<u64> {
    by_addr.values().copied().collect()
}
