// Seeded violation for rule L7: raw threads outside the workspace pool.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l7.rs` must exit non-zero.

pub fn fan_out(work: Vec<Box<dyn FnOnce() + Send>>) {
    std::thread::scope(|scope| {
        for w in work {
            scope.spawn(w);
        }
    });
}

#[cfg(test)]
mod tests {
    // L7 fires in test regions too: ad-hoc test threads bypass the pool's
    // determinism and joining guarantees just like production ones.
    #[test]
    fn spawns_raw_thread() {
        let handle = std::thread::spawn(|| 1 + 1);
        drop(handle);
    }
}
