// Seeded violation for the stale-allow extension of rule L6: a reasoned
// directive whose rule no longer fires on the lines it covers suppresses
// nothing, and left in place it would mask the next finding there.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l6_stale.rs` must exit non-zero.

// lint: allow(L3, tuned cluster distance; the constant has since moved to params)
pub fn stay_radius_m() -> f64 {
    21.5
}
