// Seeded violation for rule L2: panic surface in hot-path library code.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l2.rs` must exit non-zero.

pub fn window_mean(xs: &[f64], i: usize) -> f64 {
    let prev = xs[i - 1];
    let next = xs.get(i).copied().unwrap();
    if xs.is_empty() {
        panic!("empty window");
    }
    (prev + next) / 2.0
}
