// Seeded violation for rule L3: magic paper constants.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l3.rs` must exit non-zero.

pub struct Thresholds {
    pub d_max_m: f64,
    pub t_min_s: f64,
    pub cluster_d_m: f64,
    pub sample_interval_s: f64,
}

impl Thresholds {
    pub fn paper() -> Self {
        Self {
            d_max_m: 20.0,
            t_min_s: 30.0,
            cluster_d_m: 40.0,
            sample_interval_s: 13.5,
        }
    }
}
