// Seeded violation for rule L12: ambient process state (wall clock,
// environment, thread identity) in pipeline code.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l12.rs` must exit non-zero.

pub fn run_stamp() -> u64 {
    let _started = std::time::SystemTime::now();
    if std::env::var("DLINFMA_FAST_PATH").is_ok() {
        return 1;
    }
    let _worker = std::thread::current();
    0
}
