// Seeded violation for rule L1: NaN-unsafe float ordering.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l1.rs` must exit non-zero.
// (The unwrap/expect themselves would also trip L2; those are allowed inline
// so this fixture seeds exactly one rule.)

pub fn sort_scores(scores: &mut Vec<(usize, f64)>) {
    // lint: allow(L2, fixture seeds L1 only)
    scores.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
}

pub fn best(scores: &[f64]) -> f64 {
    scores
        .iter()
        .copied()
        // lint: allow(L2, fixture seeds L1 only)
        .max_by(|a, b| a.partial_cmp(b).expect("scores are finite"))
        .unwrap_or(f64::NEG_INFINITY)
}
