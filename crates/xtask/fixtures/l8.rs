//! L8 fixture: ad-hoc string-literal event names passed to obs sinks.
//! Every name must come from the `dlinfma_obs::names` registry (or the
//! `obs::stage` constants) so traces keep stable names.

fn f() {
    let _g = dlinfma_obs::span("ad-hoc/span-name");
    dlinfma_obs::counter("ad-hoc/count").add(1);
    dlinfma_obs::trace_instant("ad-hoc/blip");
}
