// Seeded violation for rule L6: a reasonless allow directive.
// `cargo run -p xtask -- lint crates/xtask/fixtures/l6.rs` must exit non-zero.

pub fn stay_radius_m() -> f64 {
    // lint: allow(L3)
    21.5
}

pub fn cell_side_m() -> f64 {
    // lint: allow(L3, )
    31.5
}
