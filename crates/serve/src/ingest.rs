//! The background ingest side of the serving layer: replay days through an
//! [`Engine`] and publish an immutable snapshot at every materialize
//! boundary.

use dlinfma_core::{AddressSample, Engine, LocMatcher, ShardedEngine};
use dlinfma_detcol::OrdMap;
use dlinfma_geo::Point;
use dlinfma_obs as obs;
use dlinfma_store::{LocationSnapshot, SnapshotCell};
use dlinfma_synth::{spatial_split, AddressId, Dataset, TripBatch};
use std::time::Duration;

/// Labels the engine's materialized samples against the dataset's ground
/// truth, trains a `LocMatcher` on a spatial split, and installs it with
/// [`Engine::set_model`] so [`Engine::infer`] (and therefore address-level
/// serving) comes online. Returns the number of labelled samples trained
/// on.
///
/// Labelling mirrors the batch pipeline's `label_with`: each sample's
/// label is the candidate nearest the true delivery location, skipping
/// non-finite distances.
pub fn train_engine_model(engine: &mut Engine, dataset: &Dataset) -> usize {
    let truths: OrdMap<AddressId, Point> = dataset
        .addresses
        .iter()
        .map(|a| (a.id, a.true_delivery_location))
        .collect();
    let mut samples: OrdMap<AddressId, AddressSample> =
        engine.samples().map(|s| (s.address, s.clone())).collect();
    let mut labelled = 0usize;
    for sample in samples.values_mut() {
        let Some(truth) = truths.get(&sample.address) else {
            continue;
        };
        let distances: Vec<f64> = sample
            .candidates
            .iter()
            .map(|c| engine.pool().candidate(*c).pos.distance(truth))
            .collect();
        sample.label = distances
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i);
        sample.truth_distances = Some(distances);
        if sample.label.is_some() {
            labelled += 1;
        }
    }
    let split = spatial_split(dataset, 0.6, 0.2);
    let collect = |ids: &[AddressId]| -> Vec<AddressSample> {
        ids.iter()
            .filter_map(|a| samples.get(a))
            .filter(|s| s.label.is_some())
            .cloned()
            .collect()
    };
    let train = collect(&split.train);
    let val = collect(&split.val);
    let mut model = LocMatcher::new(engine.config().model);
    model.train_pooled(&train, &val, engine.executor());
    engine.set_model(model);
    labelled
}

/// Builds a snapshot from the engine's current state and publishes it.
/// The build happens entirely outside the cell's lock — readers keep
/// answering from the previous epoch until the O(1) swap. Returns the
/// published epoch.
pub fn publish_snapshot(engine: &Engine, cell: &SnapshotCell, days_ingested: u32) -> u64 {
    let _span = obs::trace_span(obs::names::SERVE_PUBLISH);
    let snap = LocationSnapshot::from_engine(engine, days_ingested);
    let epoch = cell.publish(snap);
    obs::trace_counter(obs::names::SERVE_EPOCH, epoch as f64);
    obs::gauge(obs::names::SERVE_EPOCH).set(epoch as f64);
    epoch
}

/// Fleet-mode twin of [`train_engine_model`]: labels the fleet's merged
/// samples against ground truth, trains one `LocMatcher` on the same
/// spatial split, and installs it as the fleet model. The merged sample
/// set is shard-count-invariant, and so is the model — a 1-shard fleet
/// trains the bit-identical model the single-engine path would. Returns
/// the number of labelled samples.
pub fn train_sharded_model(fleet: &mut ShardedEngine, dataset: &Dataset) -> usize {
    let split = spatial_split(dataset, 0.6, 0.2);
    fleet.train_with(dataset, &split.train, &split.val)
}

/// Fleet-mode twin of [`publish_snapshot`]: merges the fleet's shards into
/// one [`LocationSnapshot`] (per-shard epochs included) and publishes it
/// with a single atomic swap. Returns the published epoch.
pub fn publish_sharded_snapshot(
    fleet: &ShardedEngine,
    cell: &SnapshotCell,
    days_ingested: u32,
) -> u64 {
    let _span = obs::trace_span(obs::names::SERVE_PUBLISH);
    let snap = LocationSnapshot::from_sharded(fleet, days_ingested);
    let epoch = cell.publish(snap);
    obs::trace_counter(obs::names::SERVE_EPOCH, epoch as f64);
    obs::gauge(obs::names::SERVE_EPOCH).set(epoch as f64);
    epoch
}

/// Fleet-mode twin of [`replay_and_publish`]: each day batch is
/// partitioned by station inside [`ShardedEngine::ingest`], the caller's
/// hook runs, and one merged snapshot is published. Returns the last epoch
/// published (0 when `batches` was empty).
pub fn replay_and_publish_sharded<I>(
    fleet: &mut ShardedEngine,
    batches: I,
    cell: &SnapshotCell,
    day_delay_ms: u64,
    after_ingest: impl FnMut(&mut ShardedEngine, u32),
) -> u64
where
    I: IntoIterator<Item = TripBatch>,
{
    replay_and_publish_sharded_from(fleet, batches, cell, day_delay_ms, 0, after_ingest)
}

/// [`replay_and_publish_sharded`] starting the day counter at `start_day`
/// — the warm-restart path, where the fleet was restored from a day-`k`
/// checkpoint and `batches` holds only the remaining days. The hook and
/// the published snapshots see absolute day numbers.
pub fn replay_and_publish_sharded_from<I>(
    fleet: &mut ShardedEngine,
    batches: I,
    cell: &SnapshotCell,
    day_delay_ms: u64,
    start_day: u32,
    mut after_ingest: impl FnMut(&mut ShardedEngine, u32),
) -> u64
where
    I: IntoIterator<Item = TripBatch>,
{
    let mut days = start_day;
    let mut epoch = 0u64;
    for batch in batches {
        fleet.ingest(&batch);
        days += 1;
        after_ingest(fleet, days);
        epoch = publish_sharded_snapshot(fleet, cell, days);
        if day_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(day_delay_ms));
        }
    }
    epoch
}

/// The background replay loop: for each batch, ingest, run the caller's
/// hook (e.g. train the model once enough days are in), then build and
/// publish a fresh snapshot. Sleeps `day_delay_ms` between days to emulate
/// a live feed. Returns the last epoch published (0 when `batches` was
/// empty).
pub fn replay_and_publish<I>(
    engine: &mut Engine,
    batches: I,
    cell: &SnapshotCell,
    day_delay_ms: u64,
    after_ingest: impl FnMut(&mut Engine, u32),
) -> u64
where
    I: IntoIterator<Item = TripBatch>,
{
    replay_and_publish_from(engine, batches, cell, day_delay_ms, 0, after_ingest)
}

/// [`replay_and_publish`] starting the day counter at `start_day` — the
/// warm-restart path, where the engine was restored from a day-`k`
/// checkpoint and `batches` holds only the remaining days. The hook and
/// the published snapshots see absolute day numbers.
pub fn replay_and_publish_from<I>(
    engine: &mut Engine,
    batches: I,
    cell: &SnapshotCell,
    day_delay_ms: u64,
    start_day: u32,
    mut after_ingest: impl FnMut(&mut Engine, u32),
) -> u64
where
    I: IntoIterator<Item = TripBatch>,
{
    let mut days = start_day;
    let mut epoch = 0u64;
    for batch in batches {
        engine.ingest(&batch);
        days += 1;
        after_ingest(engine, days);
        epoch = publish_snapshot(engine, cell, days);
        if day_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(day_delay_ms));
        }
    }
    epoch
}
