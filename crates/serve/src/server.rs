//! The HTTP server: accept loop, connection loops, request routing.
//!
//! Threading model: one named service thread accepts, one per live
//! connection serves (the expected concurrency is a handful of load-test
//! clients, not C10K). All request handling reads a single
//! [`LocationSnapshot`] out of the shared [`SnapshotCell`] per request (or
//! per `/batch`), so a response never mixes state from two epochs and
//! never waits on the ingest thread.

use crate::http::{read_request, write_response, Request};
use dlinfma_obs::{self as obs, JsonValue};
use dlinfma_pool::spawn_service;
use dlinfma_store::{LocationSnapshot, QuerySource, SnapshotCell};
use dlinfma_synth::AddressId;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Accept-loop poll interval while no connection is pending.
    pub accept_poll_ms: u64,
    /// Per-connection read timeout — the granularity at which idle
    /// connections notice a shutdown.
    pub read_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            accept_poll_ms: 2,
            read_timeout_ms: 25,
        }
    }
}

/// Monotonic request counters, readable at any time via [`Server::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests handled (any status).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
}

#[derive(Debug, Default)]
struct Shared {
    stop: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
}

/// The running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop, drains every connection thread and joins them.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    cell: Arc<SnapshotCell>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts serving queries against `cell`'s current snapshot.
    pub fn start(cfg: ServeConfig, cell: Arc<SnapshotCell>) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::default());
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let cell = Arc::clone(&cell);
            let conns = Arc::clone(&conns);
            spawn_service("serve-accept", move || {
                accept_loop(&listener, &cfg, &shared, &cell, &conns);
            })
        };
        Ok(Server {
            addr,
            shared,
            cell,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The snapshot cell this server reads from.
    pub fn cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            connections: self.shared.connections.load(Ordering::Relaxed),
        }
    }

    /// True once a shutdown was requested — via [`Server::shutdown`] or a
    /// client hitting `GET /shutdown`.
    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Stops accepting, lets in-flight requests finish, joins every
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self
                .conns
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    cfg: &ServeConfig,
    shared: &Arc<Shared>,
    cell: &Arc<SnapshotCell>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let cell = Arc::clone(cell);
                let read_timeout = Duration::from_millis(cfg.read_timeout_ms.max(1));
                let handle = spawn_service("serve-conn", move || {
                    conn_loop(stream, read_timeout, &shared, &cell);
                });
                conns
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(cfg.accept_poll_ms.max(1)));
            }
            Err(_) => {
                // Transient accept error (e.g. aborted handshake): back off
                // one poll interval and keep serving.
                std::thread::sleep(Duration::from_millis(cfg.accept_poll_ms.max(1)));
            }
        }
    }
}

fn conn_loop(stream: TcpStream, read_timeout: Duration, shared: &Shared, cell: &SnapshotCell) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        match read_request(&mut reader) {
            Ok(None) => return, // peer closed
            Ok(Some(req)) => {
                let (status, body) = handle(&req, shared, cell);
                shared.requests.fetch_add(1, Ordering::Relaxed);
                obs::counter(obs::names::SERVE_REQUESTS_TOTAL).inc();
                if status >= 400 {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    obs::counter(obs::names::SERVE_ERRORS_TOTAL).inc();
                }
                if write_response(&mut write_half, status, &body.render()).is_err() {
                    return;
                }
                if req.close {
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle tick: loop around to re-check the stop flag.
            }
            Err(_) => return,
        }
    }
}

fn source_str(src: QuerySource) -> &'static str {
    match src {
        QuerySource::Address => "address",
        QuerySource::Building => "building",
        QuerySource::Geocode => "geocode",
    }
}

/// One lookup result object (no epoch — the enclosing response carries it).
fn lookup_json(snap: &LocationSnapshot, addr: u32) -> Option<JsonValue> {
    let (p, src) = snap.query(AddressId(addr))?;
    Some(JsonValue::Obj(vec![
        ("address".into(), JsonValue::Num(f64::from(addr))),
        ("x".into(), JsonValue::Num(p.x)),
        ("y".into(), JsonValue::Num(p.y)),
        ("source".into(), JsonValue::Str(source_str(src).into())),
    ]))
}

fn error_body(message: &str, epoch: u64) -> JsonValue {
    JsonValue::Obj(vec![
        ("error".into(), JsonValue::Str(message.into())),
        ("epoch".into(), JsonValue::Num(epoch as f64)),
    ])
}

/// Routes one request. Every branch loads the snapshot at most once, so a
/// response is internally consistent by construction.
fn handle(req: &Request, shared: &Shared, cell: &SnapshotCell) -> (u16, JsonValue) {
    let _span = obs::trace_span(obs::names::SERVE_REQUEST);
    if req.method != "GET" {
        return (
            405,
            error_body("only GET is supported", cell.load().epoch()),
        );
    }
    match req.path.as_str() {
        "/lookup" => {
            let snap = cell.load();
            let Some(addr) = req.param("address").and_then(|v| v.parse::<u32>().ok()) else {
                return (
                    400,
                    error_body("missing or non-numeric `address` parameter", snap.epoch()),
                );
            };
            match lookup_json(&snap, addr) {
                Some(JsonValue::Obj(mut fields)) => {
                    fields.push(("epoch".into(), JsonValue::Num(snap.epoch() as f64)));
                    fields.push((
                        "days".into(),
                        JsonValue::Num(f64::from(snap.days_ingested())),
                    ));
                    (200, JsonValue::Obj(fields))
                }
                _ => (404, error_body("unknown address", snap.epoch())),
            }
        }
        "/batch" => {
            // One load answers the whole batch: the epoch consistency the
            // tests and the load generator assert on.
            let snap = cell.load();
            let Some(raw) = req.param("addresses") else {
                return (
                    400,
                    error_body("missing `addresses` parameter", snap.epoch()),
                );
            };
            let mut results = Vec::new();
            for part in raw.split(',').filter(|p| !p.is_empty()) {
                let Ok(addr) = part.parse::<u32>() else {
                    return (
                        400,
                        error_body("non-numeric entry in `addresses`", snap.epoch()),
                    );
                };
                results.push(lookup_json(&snap, addr).unwrap_or(JsonValue::Null));
            }
            (
                200,
                JsonValue::Obj(vec![
                    ("epoch".into(), JsonValue::Num(snap.epoch() as f64)),
                    (
                        "days".into(),
                        JsonValue::Num(f64::from(snap.days_ingested())),
                    ),
                    ("results".into(), JsonValue::Arr(results)),
                ]),
            )
        }
        "/healthz" => {
            let snap = cell.load();
            (
                200,
                JsonValue::Obj(vec![
                    ("status".into(), JsonValue::Str("ok".into())),
                    ("epoch".into(), JsonValue::Num(snap.epoch() as f64)),
                    ("healthy".into(), JsonValue::Bool(snap.healthy())),
                    (
                        "days".into(),
                        JsonValue::Num(f64::from(snap.days_ingested())),
                    ),
                    ("anomalies".into(), JsonValue::Num(snap.anomalies() as f64)),
                ]),
            )
        }
        "/stats" => {
            let snap = cell.load();
            (
                200,
                JsonValue::Obj(vec![
                    ("epoch".into(), JsonValue::Num(snap.epoch() as f64)),
                    (
                        "requests".into(),
                        JsonValue::Num(shared.requests.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "errors".into(),
                        JsonValue::Num(shared.errors.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "connections".into(),
                        JsonValue::Num(shared.connections.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "addresses".into(),
                        JsonValue::Num(snap.n_addresses() as f64),
                    ),
                    ("inferred".into(), JsonValue::Num(snap.len() as f64)),
                    (
                        "candidates".into(),
                        JsonValue::Num(snap.n_candidates() as f64),
                    ),
                    ("stays".into(), JsonValue::Num(snap.n_stays() as f64)),
                    ("shards".into(), JsonValue::Num(snap.n_shards() as f64)),
                    (
                        "shard_epochs".into(),
                        JsonValue::Arr(
                            snap.shard_epochs()
                                .iter()
                                .map(|&e| JsonValue::Num(e as f64))
                                .collect(),
                        ),
                    ),
                ]),
            )
        }
        "/shutdown" => {
            shared.stop.store(true, Ordering::Relaxed);
            (
                200,
                JsonValue::Obj(vec![(
                    "status".into(),
                    JsonValue::Str("shutting down".into()),
                )]),
            )
        }
        _ => (404, error_body("no such endpoint", cell.load().epoch())),
    }
}
