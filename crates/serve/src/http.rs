//! Minimal HTTP/1.1 framing shared by the server, the `bench_serve` load
//! generator, the CLI self-check and the tests.
//!
//! Implements just enough of RFC 9112 for keep-alive `GET` exchanges with
//! JSON bodies — the workspace builds against an offline registry, so no
//! external HTTP crate is available (or needed).

use dlinfma_obs::JsonValue;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One parsed request head (bodies are ignored; the API is `GET`-only).
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string, e.g. `/lookup`.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// True when the client asked for `Connection: close` (or spoke
    /// HTTP/1.0 without `keep-alive`).
    pub close: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Splits a request target into path and query pairs. No percent-decoding:
/// the API's values are numeric ids and comma lists.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (kv.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    }
}

/// Reads one request head off the connection.
///
/// `Ok(None)` means the peer closed cleanly between requests. Read-timeout
/// errors (`WouldBlock` / `TimedOut`) bubble up so the connection loop can
/// poll its stop flag and come back.
pub(crate) fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line: {line:?}"),
            ))
        }
    };
    let mut close = version == "HTTP/1.0";
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            if k.trim().eq_ignore_ascii_case("connection") {
                let v = v.trim();
                if v.eq_ignore_ascii_case("close") {
                    close = true;
                } else if v.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
    }
    let (path, query) = split_target(&target);
    Ok(Some(Request {
        method,
        path,
        query,
        close,
    }))
}

/// Writes a complete JSON response with `Content-Length` framing.
pub(crate) fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A keep-alive HTTP/1.1 client speaking the server's JSON dialect.
///
/// One client owns one TCP connection; `get` pipelines request after
/// request over it, which is what the closed-loop load generator needs.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to a server address (e.g. the value of [`crate::Server::addr`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream),
        })
    }

    /// Issues `GET <target>` and returns `(status, parsed JSON body)`.
    pub fn get(&mut self, target: &str) -> io::Result<(u16, JsonValue)> {
        {
            let stream = self.reader.get_mut();
            let req =
                format!("GET {target} HTTP/1.1\r\nHost: dlinfma\r\nConnection: keep-alive\r\n\r\n");
            stream.write_all(req.as_bytes())?;
            stream.flush()?;
        }
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection before responding",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line: {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside response headers",
                ));
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((k, v)) = header.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("content-length: {e}"))
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("utf8 body: {e}")))?;
        let json = JsonValue::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("json body: {e}")))?;
        Ok((status, json))
    }
}
