#![warn(missing_docs)]
//! The always-on serving layer (Section VI deployment shape).
//!
//! The paper deploys DLInfMA on JD's JUST platform as a long-running
//! service: address→delivery-location queries keep being answered while
//! courier data for new days keeps arriving. This crate reproduces that
//! shape with zero external dependencies:
//!
//! * [`Server`] — an HTTP/1.1 server on `std::net` answering lookups from
//!   an immutable [`dlinfma_store::LocationSnapshot`] behind a
//!   [`dlinfma_store::SnapshotCell`]. Connections run on named service
//!   threads ([`dlinfma_pool::spawn_service`]); every response carries the
//!   snapshot epoch it was answered from, and a `/batch` request answers
//!   all of its addresses from **one** snapshot load, so epoch consistency
//!   is externally observable.
//! * [`replay_and_publish`] — the background ingest loop: one
//!   `Engine::ingest` per day, then a fresh snapshot built *outside* any
//!   lock and swapped in at the materialize boundary. Readers never wait on
//!   a materialize; they keep answering from the previous epoch until the
//!   swap.
//! * [`train_engine_model`] — labels the engine's materialized samples
//!   against ground truth and trains/installs a `LocMatcher`, so
//!   address-level answers come online mid-stream.
//! * Fleet mode — [`replay_and_publish_sharded`], [`train_sharded_model`]
//!   and [`publish_sharded_snapshot`] run the same loop over a
//!   station-sharded [`dlinfma_core::ShardedEngine`]: per-station ingest,
//!   one fleet model over the merged samples, one atomically-published
//!   merged snapshot carrying per-shard epochs.
//! * [`HttpClient`] — the matching keep-alive client used by the
//!   `bench_serve` load generator, the CLI self-check and the tests.
//!
//! Per-request spans/counters flow through `crates/obs`
//! (`serve/request`, `serve/publish`, `serve/epoch`, …).

mod http;
mod ingest;
mod server;

pub use http::{HttpClient, Request};
pub use ingest::{
    publish_sharded_snapshot, publish_snapshot, replay_and_publish, replay_and_publish_from,
    replay_and_publish_sharded, replay_and_publish_sharded_from, train_engine_model,
    train_sharded_model,
};
pub use server::{ServeConfig, ServeStats, Server};
