//! End-to-end serving tests: a real TCP server, real keep-alive clients,
//! and a live publisher — including the no-torn-reads proof the serving
//! layer exists for.

use dlinfma_core::{DlInfMaConfig, Engine};
use dlinfma_geo::Point;
use dlinfma_obs::JsonValue;
use dlinfma_pool::spawn_service;
use dlinfma_serve::{replay_and_publish, train_engine_model, HttpClient, ServeConfig, Server};
use dlinfma_store::{LocationSnapshot, SnapshotCell};
use dlinfma_synth::{generate, replay, AddressId, BuildingId, Preset, Scale};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A snapshot mapping addresses `0..n` to the sentinel point `(k, k)`.
/// Published at epoch `e`, a consistent view must satisfy `x == y == k`
/// for every address, and the test publisher arranges `k == e`. Tagged as
/// merged from two shards so responses exercise the fleet-mode surface.
fn sentinel_snapshot(n: u32, k: f64) -> LocationSnapshot {
    let by_address: HashMap<AddressId, Point> =
        (0..n).map(|i| (AddressId(i), Point::new(k, k))).collect();
    let geocodes = (0..n)
        .map(|i| (AddressId(i), (BuildingId(0), Point::new(-1.0, -1.0))))
        .collect();
    LocationSnapshot::from_tables(by_address, HashMap::new(), geocodes)
        .with_shard_epochs(vec![k as u64; 2])
}

fn start_server(cell: Arc<SnapshotCell>) -> Server {
    Server::start(ServeConfig::default(), cell).expect("bind loopback")
}

#[test]
fn serves_engine_state_end_to_end() {
    let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 7);
    let mut cfg = DlInfMaConfig::fast();
    cfg.model.max_epochs = 3;
    let mut engine = Engine::new(ds.addresses.clone(), cfg);
    let cell = Arc::new(SnapshotCell::new());
    let mut server = start_server(Arc::clone(&cell));
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    // Before any publish: epoch 0, empty universe, lookups miss.
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body["epoch"].as_f64(), Some(0.0));
    let first_addr = ds.waybills[0].address.0;
    let (status, body) = client
        .get(&format!("/lookup?address={first_addr}"))
        .unwrap();
    assert_eq!(status, 404);
    assert_eq!(body["epoch"].as_f64(), Some(0.0));

    // Live ingest: one epoch per day, model trained after day 2 so
    // address-level answers come online mid-stream.
    let batches: Vec<_> = replay(&ds).collect();
    let n_days = batches.len() as u32;
    let final_epoch = replay_and_publish(&mut engine, batches, &cell, 0, |engine, day| {
        if day == 2 {
            assert!(train_engine_model(engine, &ds) > 0);
        }
    });
    assert_eq!(final_epoch, u64::from(n_days));

    // Every post-ingest lookup answers from the final epoch with the
    // fallback chain; at least one delivered address answers at address
    // level (the model is installed).
    let mut address_level_hit = false;
    for w in ds.waybills.iter().take(30) {
        let (status, body) = client
            .get(&format!("/lookup?address={}", w.address.0))
            .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body["epoch"].as_f64(), Some(f64::from(n_days)));
        assert_eq!(body["days"].as_f64(), Some(f64::from(n_days)));
        let src = body["source"].as_str().unwrap();
        assert!(matches!(src, "address" | "building" | "geocode"), "{src}");
        if src == "address" {
            address_level_hit = true;
        }
    }
    assert!(address_level_hit, "no lookup answered at address level");

    // /stats reflects the traffic; /shutdown requests a clean stop.
    let (status, stats) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    assert!(stats["requests"].as_f64().unwrap() >= 30.0);
    assert_eq!(stats["errors"].as_f64(), Some(1.0)); // the early 404

    // A single-engine snapshot reports itself as one shard whose epoch is
    // the ingested day count.
    assert_eq!(stats["shards"].as_f64(), Some(1.0));
    assert_eq!(stats["shard_epochs"][0].as_f64(), Some(f64::from(n_days)));
    let (status, _) = client.get("/shutdown").unwrap();
    assert_eq!(status, 200);
    assert!(server.stop_requested());
    server.shutdown();
}

#[test]
fn http_error_paths() {
    let cell = Arc::new(SnapshotCell::new());
    cell.publish(sentinel_snapshot(4, 1.0));
    let server = start_server(Arc::clone(&cell));
    let mut client = HttpClient::connect(server.addr()).expect("connect");

    let (status, body) = client.get("/lookup").unwrap();
    assert_eq!(status, 400);
    assert!(body["error"].as_str().unwrap().contains("address"));
    let (status, _) = client.get("/lookup?address=not-a-number").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.get("/batch").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.get("/batch?addresses=1,x").unwrap();
    assert_eq!(status, 400);
    let (status, body) = client.get("/no-such-endpoint").unwrap();
    assert_eq!(status, 404);
    assert_eq!(body["epoch"].as_f64(), Some(1.0));

    // Unknown addresses inside a batch degrade to null entries, not errors.
    let (status, body) = client.get("/batch?addresses=0,99").unwrap();
    assert_eq!(status, 200);
    assert!(body["results"][0].is_object());
    assert!(body["results"][1].is_null());

    // The keep-alive connection survived every error response.
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
}

/// The acceptance-criteria test: concurrent readers during live publishes
/// always observe a single consistent snapshot epoch. Each `/batch`
/// response must be internally uniform (`x == y == epoch` for every
/// address — a mixed view would mean a torn read) and epochs must be
/// non-decreasing per client.
#[test]
fn batch_reads_observe_single_epoch_under_live_publishes() {
    const ADDRS: u32 = 16;
    const PUBLISHES: u64 = 120;
    const CLIENTS: usize = 3;

    let cell = Arc::new(SnapshotCell::new());
    cell.publish(sentinel_snapshot(ADDRS, 1.0));
    let server = start_server(Arc::clone(&cell));
    let addr = server.addr();
    let done = Arc::new(AtomicBool::new(false));
    let batches_checked = Arc::new(AtomicUsize::new(0));

    let mut readers = Vec::new();
    for c in 0..CLIENTS {
        let done = Arc::clone(&done);
        let batches_checked = Arc::clone(&batches_checked);
        readers.push(spawn_service("test-reader", move || {
            let mut client = HttpClient::connect(addr).expect("connect");
            let target = {
                let ids: Vec<String> = (0..ADDRS).map(|i| i.to_string()).collect();
                format!("/batch?addresses={}", ids.join(","))
            };
            let mut last_epoch = 0.0f64;
            let mut rounds = 0usize;
            while !done.load(Ordering::Relaxed) || rounds == 0 {
                let (status, body) = client.get(&target).expect("batch request");
                assert_eq!(status, 200, "client {c}");
                let epoch = body["epoch"].as_f64().expect("epoch field");
                assert!(
                    epoch >= last_epoch,
                    "client {c}: epoch went backwards ({last_epoch} -> {epoch})"
                );
                // The snapshots being served are merged from two shards,
                // yet a batch response carries exactly ONE global epoch —
                // never per-shard epochs a client could tear between.
                let JsonValue::Obj(fields) = &body else {
                    panic!("client {c}: batch body is not an object");
                };
                assert_eq!(
                    fields.iter().filter(|(k, _)| k == "epoch").count(),
                    1,
                    "client {c}: merged batch response must carry exactly \
                     one global epoch"
                );
                assert!(
                    fields.iter().all(|(k, _)| k != "shard_epochs"),
                    "client {c}: per-shard epochs leaked into a batch \
                     response"
                );
                last_epoch = epoch;
                let results = body["results"].as_array().expect("results array");
                assert_eq!(results.len(), ADDRS as usize);
                for (i, r) in results.iter().enumerate() {
                    let x = r["x"].as_f64().expect("x");
                    let y = r["y"].as_f64().expect("y");
                    assert!(
                        x == epoch && y == epoch,
                        "client {c}: torn read — entry {i} is ({x}, {y}) \
                         under epoch {epoch}"
                    );
                }
                rounds += 1;
                batches_checked.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Publisher: each build happens outside the cell (like the ingest
    // thread), then swaps in; sentinel value always equals the epoch the
    // cell will assign.
    for k in 2..=PUBLISHES {
        let snap = sentinel_snapshot(ADDRS, k as f64);
        assert_eq!(cell.publish(snap), k);
        std::thread::sleep(Duration::from_millis(1));
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader thread");
    }
    assert!(
        batches_checked.load(Ordering::Relaxed) >= CLIENTS,
        "readers made no progress"
    );
    drop(server);
}

/// Reads never block on a materialize: while the publisher is mid-build
/// (simulated by a long pause before its publish), lookups keep completing
/// against the previous epoch.
#[test]
fn reads_complete_during_slow_materialize() {
    const BUILD_MS: u64 = 300;
    let cell = Arc::new(SnapshotCell::new());
    cell.publish(sentinel_snapshot(8, 1.0));
    let server = start_server(Arc::clone(&cell));
    let addr = server.addr();

    let building = Arc::new(AtomicBool::new(false));
    let publisher = {
        let cell = Arc::clone(&cell);
        let building = Arc::clone(&building);
        spawn_service("test-publisher", move || {
            building.store(true, Ordering::SeqCst);
            // The "materialize": a long snapshot build, no lock held.
            std::thread::sleep(Duration::from_millis(BUILD_MS));
            building.store(false, Ordering::SeqCst);
            cell.publish(sentinel_snapshot(8, 2.0));
        })
    };

    let mut client = HttpClient::connect(addr).expect("connect");
    while !building.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    let mut during_build = 0usize;
    loop {
        let (status, body) = client.get("/lookup?address=0").unwrap();
        // Only count responses that provably completed mid-build; for
        // those, the publish cannot have happened yet, so the reader must
        // have been answered — unblocked — from the previous epoch.
        if !building.load(Ordering::SeqCst) {
            break;
        }
        assert_eq!(status, 200);
        assert_eq!(
            body["epoch"].as_f64(),
            Some(1.0),
            "reader saw a half-published state"
        );
        during_build += 1;
    }
    assert!(
        during_build >= 5,
        "only {during_build} lookups completed during a {BUILD_MS} ms \
         materialize — reads are blocking on ingest"
    );
    publisher.join().expect("publisher");
    let (_, body) = client.get("/lookup?address=0").unwrap();
    assert_eq!(body["epoch"].as_f64(), Some(2.0));
    drop(server);
}

/// Raw-socket check: a request with `Connection: close` is honoured and
/// the JSON body is well-formed.
#[test]
fn connection_close_is_honoured() {
    use std::io::{Read, Write};
    let cell = Arc::new(SnapshotCell::new());
    cell.publish(sentinel_snapshot(2, 1.0));
    let server = start_server(Arc::clone(&cell));

    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap(); // EOF => server closed
    let body = raw.split("\r\n\r\n").nth(1).expect("has body");
    let json = JsonValue::parse(body).expect("valid JSON body");
    assert_eq!(json["status"].as_str(), Some("ok"));
    drop(server);
}
