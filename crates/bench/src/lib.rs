//! Criterion benchmark crate; see `benches/` for every table and figure
//! driver, and `src/bin/` for the machine-readable `BENCH_*.json` artifact
//! bins (`bench_pipeline`, `bench_serve`).
//!
//! This library holds the measurement and gating helpers those bins share:
//! the machine-speed calibration workload, nearest-rank percentiles, and
//! the calibrated regression gate with fail-fast baseline validation.

use dlinfma_obs::{JsonValue, Stopwatch};

/// A fixed, optimization-resistant single-thread workload (FNV-1a over a
/// counter stream) whose duration calibrates this machine's speed. Both the
/// artifact and its committed baseline carry this number, so gates compare
/// *calibrated ratios* instead of raw wall time, which is not portable
/// across machines.
pub fn calibration_ns() -> u64 {
    let t = Stopwatch::start();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0u64..20_000_000 {
        h ^= i;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    std::hint::black_box(h);
    t.elapsed_ns()
}

/// Nearest-rank percentile over an ascending-sorted latency slice.
/// `p` is in percent (`50.0`, `99.9`); empty input yields 0.
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // The epsilon keeps exact ranks (e.g. p99.9 of 1000 samples = rank 999)
    // from being bumped a slot by binary-fraction noise in `p / 100.0`.
    let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil();
    let idx = (rank as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Fail-fast output-path check: create/open `path` for writing *before*
/// the measured run, so a typo'd directory errors immediately instead of
/// discarding minutes of benchmarking at write time. Errors name `flag`.
pub fn ensure_writable(flag: &str, path: &str) -> Result<(), String> {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map(|_| ())
        .map_err(|e| format!("cannot open {flag} '{path}': {e}"))
}

/// Compares this run's calibrated ratio (`value_ns / calib_ns`) for
/// `metric` against the committed baseline file and errors beyond
/// `tolerance`×. Returns `(run_ratio, baseline_ratio)` on success so the
/// caller can print them.
///
/// The baseline is validated eagerly with named errors: a missing file, a
/// missing `metric`/`calibration_ns` key, or a zero/negative/non-finite
/// value all fail the gate rather than silently passing (a zero-valued
/// baseline metric would make the gate vacuous or make any run look
/// infinitely regressed, depending on which side it lands).
pub fn calibrated_gate(
    baseline_path: &str,
    metric: &str,
    value_ns: u64,
    calib_ns: u64,
    tolerance: f64,
) -> Result<(f64, f64), String> {
    let text = std::fs::read_to_string(baseline_path).map_err(|e| {
        format!(
            "gate baseline {baseline_path}: {e} \
             (regenerate it by running this bin and committing the output)"
        )
    })?;
    let base =
        JsonValue::parse(&text).map_err(|e| format!("gate baseline {baseline_path}: {e}"))?;
    let field = |k: &str| -> Result<f64, String> {
        let v = base
            .get(k)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("gate baseline {baseline_path}: missing numeric `{k}`"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!(
                "gate baseline {baseline_path}: `{k}` is {v}; must be a positive finite \
                 number (regenerate the baseline)"
            ));
        }
        Ok(v)
    };
    let base_ratio = field(metric)? / field("calibration_ns")?;
    let ratio = value_ns as f64 / calib_ns.max(1) as f64;
    if ratio > base_ratio * tolerance {
        return Err(format!(
            "{metric} regressed: calibrated ratio {ratio:.3} exceeds baseline \
             {base_ratio:.3} by more than {:.0}%",
            (tolerance - 1.0) * 100.0
        ));
    }
    Ok((ratio, base_ratio))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, content: Option<&str>) -> String {
        let dir = std::env::temp_dir().join("dlinfma-bench-gate-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        match content {
            Some(c) => std::fs::write(&path, c).unwrap(),
            None => {
                std::fs::remove_file(&path).ok();
            }
        }
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let lat: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile_ns(&lat, 50.0), 500);
        assert_eq!(percentile_ns(&lat, 95.0), 950);
        assert_eq!(percentile_ns(&lat, 99.0), 990);
        assert_eq!(percentile_ns(&lat, 99.9), 999);
        assert_eq!(percentile_ns(&lat, 100.0), 1000);
        assert_eq!(percentile_ns(&[42], 99.9), 42);
        assert_eq!(percentile_ns(&[], 50.0), 0);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let p = tmp(
            "ok.json",
            Some(r#"{"metric_ns": 1000, "calibration_ns": 1000}"#),
        );
        // Same ratio: passes.
        let (ratio, base_ratio) = calibrated_gate(&p, "metric_ns", 500, 500, 1.3).unwrap();
        assert!((ratio - 1.0).abs() < 1e-12 && (base_ratio - 1.0).abs() < 1e-12);
        // 2x the baseline ratio against 1.3x tolerance: fails.
        let err = calibrated_gate(&p, "metric_ns", 1000, 500, 1.3).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn gate_fails_fast_on_missing_baseline_file() {
        let p = tmp("absent.json", None);
        let err = calibrated_gate(&p, "metric_ns", 1, 1, 1.3).unwrap_err();
        assert!(err.contains(&p), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn gate_fails_fast_on_zero_or_missing_metric() {
        let zero = tmp(
            "zero.json",
            Some(r#"{"metric_ns": 0, "calibration_ns": 1000}"#),
        );
        let err = calibrated_gate(&zero, "metric_ns", 1, 1, 1.3).unwrap_err();
        assert!(err.contains("`metric_ns` is 0"), "{err}");

        let zero_calib = tmp(
            "zero-calib.json",
            Some(r#"{"metric_ns": 1000, "calibration_ns": 0}"#),
        );
        let err = calibrated_gate(&zero_calib, "metric_ns", 1, 1, 1.3).unwrap_err();
        assert!(err.contains("`calibration_ns` is 0"), "{err}");

        let missing = tmp("missing-key.json", Some(r#"{"calibration_ns": 1000}"#));
        let err = calibrated_gate(&missing, "metric_ns", 1, 1, 1.3).unwrap_err();
        assert!(err.contains("missing numeric `metric_ns`"), "{err}");

        let garbage = tmp("garbage.json", Some("not json"));
        let err = calibrated_gate(&garbage, "metric_ns", 1, 1, 1.3).unwrap_err();
        assert!(err.contains("garbage.json"), "{err}");
    }

    #[test]
    fn ensure_writable_names_the_flag() {
        let err = ensure_writable("--out", "/nonexistent-dir-for-bench-test/x.json").unwrap_err();
        assert!(err.contains("--out"), "{err}");
        let ok = tmp("writable.json", Some("{}"));
        ensure_writable("--out", &ok).unwrap();
    }
}
