//! Criterion benchmark crate; see `benches/` for every table and figure driver.
