//! Machine-readable pipeline timing artifact and regression gate.
//!
//! Runs the batch pipeline at `workers = 1` and `workers = max` (recording
//! the per-stage wall/CPU breakdown for each), replays the streaming engine
//! per day on the Tiny world, and writes a single JSON file (default
//! `BENCH_pipeline.json`, overridable as the first argument). CI publishes
//! this so pipeline-latency regressions show up as a diff rather than a
//! vibe.
//!
//! With `--gate <BENCH_baseline.json>` the run additionally compares its
//! own prepare time against the committed baseline and exits non-zero on a
//! regression beyond the documented 30% tolerance. Wall clocks are not
//! portable across machines, so both files carry a `calibration_ns` (a
//! fixed single-thread workload timed in-process) and the gate compares the
//! *calibrated ratio* `prepare_ns / calibration_ns` instead of raw time.

use dlinfma_core::{DlInfMa, Engine};
use dlinfma_eval::pipeline_config;
use dlinfma_obs::{JsonValue, Stopwatch};
use dlinfma_synth::{generate, replay, Preset, Scale};
use std::process::ExitCode;

const SEED: u64 = 1;

/// Regression tolerance of the `--gate` check: fail only when the
/// calibrated prepare ratio exceeds the baseline's by more than this
/// factor. 30% absorbs run-to-run scheduler noise on shared CI runners
/// while still catching a real slowdown of the dominant stages.
const GATE_TOLERANCE: f64 = 1.30;

/// A fixed, optimization-resistant single-thread workload (FNV-1a over a
/// counter stream) whose duration calibrates this machine's speed.
fn calibration_ns() -> u64 {
    let t = Stopwatch::start();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0u64..20_000_000 {
        h ^= i;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    std::hint::black_box(h);
    t.elapsed_ns()
}

fn prepare_at(workers: usize, dataset: &dlinfma_synth::Dataset, preset: Preset) -> (u64, DlInfMa) {
    let mut cfg = pipeline_config(preset);
    cfg.workers = workers;
    let t = Stopwatch::start();
    let batch = DlInfMa::prepare(dataset, cfg);
    (t.elapsed_ns(), batch)
}

fn run() -> Result<(), String> {
    let mut out = "BENCH_pipeline.json".to_string();
    let mut gate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--gate" {
            gate = Some(args.next().ok_or("--gate needs a baseline path")?);
        } else {
            out = a;
        }
    }
    let preset = Preset::DowBJ;
    let (_, dataset) = generate(preset, Scale::Tiny, SEED);
    let calib = calibration_ns();

    let max_workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(16));
    let mut sweep = Vec::new();
    let mut prepare_ns = 0u64;
    let mut batch = None;
    let mut worker_counts = vec![1usize];
    if max_workers > 1 {
        worker_counts.push(max_workers);
    }
    for &w in &worker_counts {
        let (ns, b) = prepare_at(w, &dataset, preset);
        sweep.push(JsonValue::Obj(vec![
            ("workers".into(), JsonValue::Num(w as f64)),
            ("prepare_ns".into(), JsonValue::Num(ns as f64)),
            ("report".into(), b.report().to_json()),
        ]));
        // The headline prepare time is the all-workers run (the default
        // configuration users get).
        prepare_ns = ns;
        batch = Some(b);
    }
    let batch = batch.ok_or("worker sweep was empty")?;

    let mut engine = Engine::new(dataset.addresses.clone(), pipeline_config(preset));
    let mut days = Vec::new();
    for day in replay(&dataset) {
        days.push(engine.ingest(&day).to_json());
    }

    let n_days = days.len();
    let json = JsonValue::Obj(vec![
        ("preset".into(), JsonValue::Str(preset.name().into())),
        ("scale".into(), JsonValue::Str("tiny".into())),
        ("seed".into(), JsonValue::Num(SEED as f64)),
        ("calibration_ns".into(), JsonValue::Num(calib as f64)),
        ("max_workers".into(), JsonValue::Num(max_workers as f64)),
        ("prepare_ns".into(), JsonValue::Num(prepare_ns as f64)),
        ("prepare_report".into(), batch.report().to_json()),
        ("workers_sweep".into(), JsonValue::Arr(sweep)),
        ("ingest_days".into(), JsonValue::Arr(days)),
    ]);
    std::fs::write(&out, json.render_pretty()).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out} (prepare {:.3} ms at {max_workers} workers, {n_days} replay days)",
        prepare_ns as f64 / 1e6
    );

    if let Some(baseline_path) = gate {
        gate_check(&baseline_path, prepare_ns, calib)?;
    }
    Ok(())
}

/// Compares this run's calibrated prepare ratio against the committed
/// baseline; errors beyond [`GATE_TOLERANCE`].
fn gate_check(baseline_path: &str, prepare_ns: u64, calib: u64) -> Result<(), String> {
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let base = JsonValue::parse(&text).map_err(|e| format!("parse {baseline_path}: {e:?}"))?;
    let field = |k: &str| -> Result<f64, String> {
        base.get(k)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{baseline_path}: missing numeric `{k}`"))
    };
    let base_ratio = field("prepare_ns")? / field("calibration_ns")?.max(1.0);
    let ratio = prepare_ns as f64 / calib.max(1) as f64;
    println!(
        "gate: calibrated prepare ratio {ratio:.3} vs baseline {base_ratio:.3} \
         (tolerance {GATE_TOLERANCE}x)"
    );
    if ratio > base_ratio * GATE_TOLERANCE {
        return Err(format!(
            "prepare regressed: calibrated ratio {ratio:.3} exceeds baseline \
             {base_ratio:.3} by more than {:.0}%",
            (GATE_TOLERANCE - 1.0) * 100.0
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
