//! Machine-readable pipeline timing artifact and regression gate.
//!
//! Runs the batch pipeline at `workers = 1` and `workers = max` (recording
//! the per-stage wall/CPU breakdown for each), replays the streaming engine
//! per day on the Tiny world, and writes a single JSON file (default
//! `BENCH_pipeline.json`, overridable as the first argument). CI publishes
//! this so pipeline-latency regressions show up as a diff rather than a
//! vibe.
//!
//! With `--gate <BENCH_baseline.json>` the run additionally compares its
//! own prepare time against the committed baseline and exits non-zero on a
//! regression beyond the documented 30% tolerance. Wall clocks are not
//! portable across machines, so both files carry a `calibration_ns` (a
//! fixed single-thread workload timed in-process) and the gate compares the
//! *calibrated ratio* `prepare_ns / calibration_ns` instead of raw time.

use dlinfma_bench::{calibrated_gate, calibration_ns, ensure_writable};
use dlinfma_core::{snapshot, DlInfMa, Engine, ShardedEngine};
use dlinfma_eval::pipeline_config;
use dlinfma_obs::{self as obs, JsonValue, Stopwatch};
use dlinfma_synth::{generate, generate_with, replay, world_config, Dataset, Preset, Scale};
use std::process::ExitCode;

const SEED: u64 = 1;

/// Tracing-overhead budget: a traced Tiny replay must stay within 10% of
/// the untraced wall time (best-of-[`OVERHEAD_ROUNDS`], interleaved), plus
/// a small absolute slack because the Tiny replay is only a few
/// milliseconds and scheduler jitter alone exceeds 10% of that.
const TRACE_OVERHEAD_TOLERANCE: f64 = 1.10;
const TRACE_OVERHEAD_SLACK_NS: u64 = 2_000_000;
const OVERHEAD_ROUNDS: usize = 5;

/// Regression tolerance of the `--gate` check: fail only when the
/// calibrated prepare ratio exceeds the baseline's by more than this
/// factor. 30% absorbs run-to-run scheduler noise on shared CI runners
/// while still catching a real slowdown of the dominant stages.
const GATE_TOLERANCE: f64 = 1.30;

/// Wall time of one full engine replay of `dataset`, with the trace layer
/// on or off. Traced runs drain the rings afterwards so successive
/// measurements start from empty buffers.
fn replay_wall_ns(dataset: &Dataset, preset: Preset, traced: bool) -> u64 {
    if traced {
        obs::trace_enable();
    }
    let mut engine = Engine::new(dataset.addresses.clone(), pipeline_config(preset));
    let t = Stopwatch::start();
    for day in replay(dataset) {
        engine.ingest(&day);
    }
    let ns = t.elapsed_ns();
    if traced {
        obs::trace_disable();
        let _ = obs::take_trace();
    }
    ns
}

/// Full fleet-mode replay of `dataset` at `shards` station shards; returns
/// the wall time and the merged funnel totals so the sweep records that
/// every shard count produced the identical artifacts.
fn fleet_replay_at(shards: usize, dataset: &Dataset, preset: Preset) -> (u64, usize, usize) {
    let mut fleet = ShardedEngine::new(dataset.addresses.clone(), pipeline_config(preset), shards);
    let t = Stopwatch::start();
    for day in replay(dataset) {
        fleet.ingest(&day);
    }
    (t.elapsed_ns(), fleet.n_stays(), fleet.n_candidates())
}

fn prepare_at(workers: usize, dataset: &dlinfma_synth::Dataset, preset: Preset) -> (u64, DlInfMa) {
    let mut cfg = pipeline_config(preset);
    cfg.workers = workers;
    let t = Stopwatch::start();
    let batch = DlInfMa::prepare(dataset, cfg);
    (t.elapsed_ns(), batch)
}

fn run() -> Result<(), String> {
    let mut out = "BENCH_pipeline.json".to_string();
    let mut gate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--gate" {
            gate = Some(args.next().ok_or("--gate needs a baseline path")?);
        } else {
            out = a;
        }
    }
    // Fail fast on an unwritable output path before the measured run.
    ensure_writable("--out", &out)?;
    let preset = Preset::DowBJ;
    let (_, dataset) = generate(preset, Scale::Tiny, SEED);
    let calib = calibration_ns();

    let max_workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(16));
    let mut sweep = Vec::new();
    let mut prepare_ns = 0u64;
    let mut batch = None;
    let mut worker_counts = vec![1usize];
    if max_workers > 1 {
        worker_counts.push(max_workers);
    }
    for &w in &worker_counts {
        let (ns, b) = prepare_at(w, &dataset, preset);
        sweep.push(JsonValue::Obj(vec![
            ("workers".into(), JsonValue::Num(w as f64)),
            ("prepare_ns".into(), JsonValue::Num(ns as f64)),
            ("report".into(), b.report().to_json()),
        ]));
        // The headline prepare time is the all-workers run (the default
        // configuration users get).
        prepare_ns = ns;
        batch = Some(b);
    }
    let batch = batch.ok_or("worker sweep was empty")?;

    // Fleet mode: the same replay partitioned over 1/2/4 station shards on
    // a three-station world. The merged totals must not move with the shard
    // count — that invariance rides along in the artifact.
    let sharded_dataset = {
        let mut wc = world_config(preset, Scale::Tiny);
        wc.sim.n_stations = 3;
        generate_with(&wc, SEED).1
    };
    let mut shards_sweep = Vec::new();
    let mut fleet_totals: Option<(usize, usize)> = None;
    for shards in [1usize, 2, 4] {
        let (ns, n_stays, n_candidates) = fleet_replay_at(shards, &sharded_dataset, preset);
        match fleet_totals {
            None => fleet_totals = Some((n_stays, n_candidates)),
            Some(t) if t != (n_stays, n_candidates) => {
                return Err(format!(
                    "shard sweep diverged at {shards} shards: \
                     ({n_stays} stays, {n_candidates} candidates) vs {t:?}"
                ));
            }
            Some(_) => {}
        }
        shards_sweep.push(JsonValue::Obj(vec![
            ("shards".into(), JsonValue::Num(shards as f64)),
            ("replay_ns".into(), JsonValue::Num(ns as f64)),
            ("n_stays".into(), JsonValue::Num(n_stays as f64)),
            ("n_candidates".into(), JsonValue::Num(n_candidates as f64)),
        ]));
    }

    let mut engine = Engine::new(dataset.addresses.clone(), pipeline_config(preset));
    let mut days = Vec::new();
    let mut clustering_ns = 0u64;
    let mut clustering_cpu_ns = 0u64;
    for day in replay(&dataset) {
        let rep = engine.ingest(&day);
        clustering_ns += rep.clustering_ns;
        clustering_cpu_ns += rep.clustering_cpu_ns;
        days.push(rep.to_json());
    }

    // Informational snapshot codec timing on the fully-replayed engine:
    // how long a durable checkpoint costs to encode, and a warm restart
    // to decode. Not gated — checkpointing is off the ingest hot path —
    // but published so codec regressions show up as a diff.
    let t = Stopwatch::start();
    let snap_bytes = snapshot::engine_to_bytes(&engine);
    let snapshot_encode_ns = t.elapsed_ns();
    let exec = std::sync::Arc::new(dlinfma_pool::Pool::new(pipeline_config(preset).workers));
    let t = Stopwatch::start();
    let restored = snapshot::engine_from_bytes(
        &snap_bytes,
        dataset.addresses.clone(),
        pipeline_config(preset),
        exec,
    )
    .map_err(|e| format!("snapshot round trip failed: {e}"))?;
    let snapshot_decode_ns = t.elapsed_ns();
    if snapshot::engine_to_bytes(&restored) != snap_bytes {
        return Err("snapshot round trip is not byte-identical".to_string());
    }

    // Tracing overhead: interleaved best-of-N traced vs untraced replays.
    // Interleaving cancels drift (thermal, cache warm-up) that would bias a
    // run-all-of-one-then-the-other comparison.
    let mut untraced_best = u64::MAX;
    let mut traced_best = u64::MAX;
    for _ in 0..OVERHEAD_ROUNDS {
        untraced_best = untraced_best.min(replay_wall_ns(&dataset, preset, false));
        traced_best = traced_best.min(replay_wall_ns(&dataset, preset, true));
    }
    let overhead_ratio = traced_best as f64 / untraced_best.max(1) as f64;

    // One more traced replay, kept this time: the Chrome-trace CI artifact.
    obs::reset_trace();
    obs::trace_enable();
    let mut traced_engine = Engine::new(dataset.addresses.clone(), pipeline_config(preset));
    for day in replay(&dataset) {
        traced_engine.ingest(&day);
    }
    obs::trace_disable();
    let capture = obs::take_trace();
    let trace_out = std::path::Path::new(&out).with_file_name("BENCH_trace.json");
    std::fs::write(&trace_out, obs::chrome_trace_json(&capture).render())
        .map_err(|e| format!("write {}: {e}", trace_out.display()))?;
    println!(
        "wrote {} ({} events across {} threads)",
        trace_out.display(),
        capture.events.len(),
        capture.threads.len()
    );

    let n_days = days.len();
    let json = JsonValue::Obj(vec![
        ("preset".into(), JsonValue::Str(preset.name().into())),
        ("scale".into(), JsonValue::Str("tiny".into())),
        ("seed".into(), JsonValue::Num(SEED as f64)),
        ("calibration_ns".into(), JsonValue::Num(calib as f64)),
        ("max_workers".into(), JsonValue::Num(max_workers as f64)),
        ("prepare_ns".into(), JsonValue::Num(prepare_ns as f64)),
        ("prepare_report".into(), batch.report().to_json()),
        ("workers_sweep".into(), JsonValue::Arr(sweep)),
        ("shards_sweep".into(), JsonValue::Arr(shards_sweep)),
        ("clustering_ns".into(), JsonValue::Num(clustering_ns as f64)),
        (
            "clustering_cpu_ns".into(),
            JsonValue::Num(clustering_cpu_ns as f64),
        ),
        (
            "replay_untraced_ns".into(),
            JsonValue::Num(untraced_best as f64),
        ),
        (
            "replay_traced_ns".into(),
            JsonValue::Num(traced_best as f64),
        ),
        (
            "trace_overhead_ratio".into(),
            JsonValue::Num(overhead_ratio),
        ),
        (
            "snapshot_encode_ns".into(),
            JsonValue::Num(snapshot_encode_ns as f64),
        ),
        (
            "snapshot_decode_ns".into(),
            JsonValue::Num(snapshot_decode_ns as f64),
        ),
        (
            "snapshot_bytes".into(),
            JsonValue::Num(snap_bytes.len() as f64),
        ),
        ("ingest_days".into(), JsonValue::Arr(days)),
    ]);
    std::fs::write(&out, json.render_pretty()).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out} (prepare {:.3} ms at {max_workers} workers, {n_days} replay days)",
        prepare_ns as f64 / 1e6
    );
    if let Some((n_stays, n_candidates)) = fleet_totals {
        println!(
            "shard sweep 1/2/4: merged totals stable at {n_stays} stays, \
             {n_candidates} candidates"
        );
    }

    println!(
        "trace overhead: {:.3} ms traced vs {:.3} ms untraced ({:+.1}%)",
        traced_best as f64 / 1e6,
        untraced_best as f64 / 1e6,
        (overhead_ratio - 1.0) * 100.0
    );
    if traced_best
        > (untraced_best as f64 * TRACE_OVERHEAD_TOLERANCE) as u64 + TRACE_OVERHEAD_SLACK_NS
    {
        return Err(format!(
            "tracing overhead {:.1}% exceeds the {:.0}% budget \
             (traced {:.3} ms vs untraced {:.3} ms, slack {:.1} ms)",
            (overhead_ratio - 1.0) * 100.0,
            (TRACE_OVERHEAD_TOLERANCE - 1.0) * 100.0,
            traced_best as f64 / 1e6,
            untraced_best as f64 / 1e6,
            TRACE_OVERHEAD_SLACK_NS as f64 / 1e6
        ));
    }

    if let Some(baseline_path) = gate {
        let (ratio, base_ratio) = calibrated_gate(
            &baseline_path,
            "prepare_ns",
            prepare_ns,
            calib,
            GATE_TOLERANCE,
        )?;
        println!(
            "gate: calibrated prepare ratio {ratio:.3} vs baseline {base_ratio:.3} \
             (tolerance {GATE_TOLERANCE}x)"
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
