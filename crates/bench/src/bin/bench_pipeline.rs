//! Machine-readable pipeline timing artifact.
//!
//! Runs the batch pipeline once and the streaming engine over a per-day
//! replay on the Tiny world, then writes a single JSON file (default
//! `BENCH_pipeline.json`, overridable as the first argument) with the
//! one-shot prepare time, the per-stage breakdown, and per-day ingest
//! timings. CI publishes this so pipeline-latency regressions show up as a
//! diff rather than a vibe.

use dlinfma_core::{DlInfMa, Engine};
use dlinfma_eval::pipeline_config;
use dlinfma_obs::{JsonValue, Stopwatch};
use dlinfma_synth::{generate, replay, Preset, Scale};
use std::process::ExitCode;

const SEED: u64 = 1;

fn run() -> Result<(), String> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let preset = Preset::DowBJ;
    let (_, dataset) = generate(preset, Scale::Tiny, SEED);
    let cfg = pipeline_config(preset);

    let t = Stopwatch::start();
    let batch = DlInfMa::prepare(&dataset, cfg);
    let prepare_ns = t.elapsed_ns();

    let mut engine = Engine::new(dataset.addresses.clone(), cfg);
    let mut days = Vec::new();
    for day in replay(&dataset) {
        days.push(engine.ingest(&day).to_json());
    }

    let n_days = days.len();
    let json = JsonValue::Obj(vec![
        ("preset".into(), JsonValue::Str(preset.name().into())),
        ("scale".into(), JsonValue::Str("tiny".into())),
        ("seed".into(), JsonValue::Num(SEED as f64)),
        ("prepare_ns".into(), JsonValue::Num(prepare_ns as f64)),
        ("prepare_report".into(), batch.report().to_json()),
        ("ingest_days".into(), JsonValue::Arr(days)),
    ]);
    std::fs::write(&out, json.render_pretty()).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out} (prepare {:.3} ms, {n_days} replay days)",
        prepare_ns as f64 / 1e6
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
