//! Machine-readable serving-latency artifact and regression gate.
//!
//! Boots the `dlinfma-serve` HTTP server on a loopback port, replays the
//! Tiny world through a background ingest thread (one snapshot epoch per
//! day, model trained mid-stream), and drives it with a mixed load: a pool
//! of *closed-loop* clients (back-to-back keep-alive requests, `--concurrency`
//! of them) plus one *open-loop* client issuing at a fixed `--open-rps`
//! rate regardless of response times. Every response is checked for epoch
//! consistency — epochs must never go backwards on a connection, and a
//! non-OK status fails the run — so this bin doubles as the CI serve smoke
//! test. Writes QPS and the p50/p95/p99/p999 latency spectrum to a single
//! JSON file (default `BENCH_serve.json`, overridable as the first
//! argument).
//!
//! With `--gate <BENCH_serve_baseline.json>` the run compares its mean
//! request latency against the committed baseline via the calibrated-ratio
//! gate shared with `bench_pipeline`. Loopback latency is far noisier than
//! pipeline CPU time, so the tolerance is a deliberately generous 3x:
//! the gate is a smoke alarm for order-of-magnitude serving regressions
//! (an accidental lock across the read path, a per-request allocation
//! storm), not a microbenchmark.

use dlinfma_bench::{calibrated_gate, calibration_ns, ensure_writable, percentile_ns};
use dlinfma_core::{DlInfMaConfig, Engine};
use dlinfma_obs::{JsonValue, Stopwatch};
use dlinfma_pool::spawn_service;
use dlinfma_serve::{replay_and_publish, train_engine_model, HttpClient, ServeConfig, Server};
use dlinfma_store::SnapshotCell;
use dlinfma_synth::{generate, replay, Preset, Scale};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 1;

/// Regression tolerance of the `--gate` check on mean request latency.
/// See the module docs for why this is looser than the pipeline gate.
const SERVE_GATE_TOLERANCE: f64 = 3.0;

struct Load {
    latencies_ns: Vec<u64>,
    requests: u64,
    errors: u64,
}

/// One closed-loop client: back-to-back requests on a keep-alive
/// connection until `done`, alternating single lookups with batch reads,
/// asserting the epoch never goes backwards on this connection.
#[allow(clippy::too_many_arguments)]
fn closed_loop(
    addr: std::net::SocketAddr,
    addrs: Arc<Vec<u32>>,
    done: Arc<AtomicBool>,
    min_requests: u64,
) -> Load {
    let mut client = match HttpClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            return Load {
                latencies_ns: Vec::new(),
                requests: 0,
                errors: 1,
            }
        }
    };
    let batch_target = {
        let ids: Vec<String> = addrs.iter().take(8).map(u32::to_string).collect();
        format!("/batch?addresses={}", ids.join(","))
    };
    let mut load = Load {
        latencies_ns: Vec::new(),
        requests: 0,
        errors: 0,
    };
    let mut last_epoch = 0.0f64;
    let mut i = 0usize;
    while !done.load(Ordering::Relaxed) || load.requests < min_requests {
        let target = if i % 4 == 3 {
            batch_target.clone()
        } else {
            format!("/lookup?address={}", addrs[i % addrs.len()])
        };
        let t = Stopwatch::start();
        match client.get(&target) {
            // 404 = address not yet materialized in the early epochs; it is
            // a well-formed answer, not a serving error.
            Ok((status, body)) if status == 200 || status == 404 => {
                load.latencies_ns.push(t.elapsed_ns());
                match body["epoch"].as_f64() {
                    Some(epoch) if epoch >= last_epoch => last_epoch = epoch,
                    _ => load.errors += 1,
                }
            }
            _ => load.errors += 1,
        }
        load.requests += 1;
        i += 1;
    }
    load
}

/// The open-loop client: fires at a fixed rate on its own connection,
/// sleeping out the remainder of each interval whatever the response time
/// was. Models arrival-rate pressure that closed loops (which slow down
/// with the server) cannot.
fn open_loop(
    addr: std::net::SocketAddr,
    addrs: Arc<Vec<u32>>,
    done: Arc<AtomicBool>,
    rps: u64,
) -> Load {
    let mut load = Load {
        latencies_ns: Vec::new(),
        requests: 0,
        errors: 0,
    };
    let mut client = match HttpClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            load.errors = 1;
            return load;
        }
    };
    let interval_ns = 1_000_000_000 / rps.max(1);
    let mut i = 0usize;
    while !done.load(Ordering::Relaxed) {
        let t = Stopwatch::start();
        match client.get(&format!("/lookup?address={}", addrs[i % addrs.len()])) {
            Ok((status, _)) if status == 200 || status == 404 => {
                load.latencies_ns.push(t.elapsed_ns());
            }
            _ => load.errors += 1,
        }
        load.requests += 1;
        i += 1;
        let spent = t.elapsed_ns();
        if spent < interval_ns {
            std::thread::sleep(Duration::from_nanos(interval_ns - spent));
        }
    }
    load
}

fn run() -> Result<(), String> {
    let mut out = "BENCH_serve.json".to_string();
    let mut gate: Option<String> = None;
    let mut concurrency = 4u64;
    let mut open_rps = 200u64;
    let mut min_requests = 400u64;
    let mut day_delay_ms = 20u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = args.next().ok_or(format!("{name} needs a value"))?;
            v.parse().map_err(|e| format!("bad {name} '{v}': {e}"))
        };
        match a.as_str() {
            "--gate" => gate = Some(args.next().ok_or("--gate needs a baseline path")?),
            "--concurrency" => concurrency = num("--concurrency")?.max(1),
            "--open-rps" => open_rps = num("--open-rps")?,
            "--min-requests" => min_requests = num("--min-requests")?,
            "--day-delay-ms" => day_delay_ms = num("--day-delay-ms")?,
            _ => out = a,
        }
    }
    // Fail fast on an unwritable output path before the measured run.
    ensure_writable("--out", &out)?;
    let calib = calibration_ns();

    let preset = Preset::DowBJ;
    let (_, dataset) = generate(preset, Scale::Tiny, SEED);
    let mut cfg = DlInfMaConfig::fast();
    cfg.model.max_epochs = 3;
    let engine = Engine::new(dataset.addresses.clone(), cfg);
    let cell = Arc::new(SnapshotCell::new());
    let mut server =
        Server::start(ServeConfig::default(), Arc::clone(&cell)).map_err(|e| e.to_string())?;
    let addr = server.addr();

    let batches: Vec<_> = replay(&dataset).collect();
    let n_days = batches.len() as u64;
    let addrs: Arc<Vec<u32>> = Arc::new(
        dataset
            .waybills
            .iter()
            .take(64)
            .map(|w| w.address.0)
            .collect(),
    );
    if addrs.is_empty() {
        return Err("tiny world generated no waybills".into());
    }

    // Background ingest: one epoch per day, model trained after day 2.
    let ingest = {
        let cell = Arc::clone(&cell);
        let ds = dataset.clone();
        let mut engine = engine;
        spawn_service("bench-ingest", move || {
            replay_and_publish(&mut engine, batches, &cell, day_delay_ms, |engine, day| {
                if day == 2 {
                    train_engine_model(engine, &ds);
                }
            })
        })
    };

    // The measured load phase: closed-loop pool + one open-loop client,
    // all overlapping the live ingest above.
    let done = Arc::new(AtomicBool::new(false));
    let wall = Stopwatch::start();
    let mut clients = Vec::new();
    for _ in 0..concurrency {
        let (addrs, done) = (Arc::clone(&addrs), Arc::clone(&done));
        clients.push(spawn_service("bench-closed", move || {
            closed_loop(addr, addrs, done, min_requests)
        }));
    }
    if open_rps > 0 {
        let (addrs, done) = (Arc::clone(&addrs), Arc::clone(&done));
        clients.push(spawn_service("bench-open", move || {
            open_loop(addr, addrs, done, open_rps)
        }));
    }

    let final_epoch = ingest.join().map_err(|_| "ingest thread panicked")?;
    done.store(true, Ordering::Relaxed);
    let mut latencies: Vec<u64> = Vec::new();
    let (requests, errors) = (AtomicU64::new(0), AtomicU64::new(0));
    for c in clients {
        let load = c.join().map_err(|_| "client thread panicked")?;
        requests.fetch_add(load.requests, Ordering::Relaxed);
        errors.fetch_add(load.errors, Ordering::Relaxed);
        latencies.extend(load.latencies_ns);
    }
    let wall_ns = wall.elapsed_ns();
    server.shutdown();

    let (requests, errors) = (requests.into_inner(), errors.into_inner());
    if final_epoch != n_days {
        return Err(format!(
            "ingest published epoch {final_epoch}, expected one per day ({n_days})"
        ));
    }
    if errors > 0 {
        return Err(format!(
            "{errors} of {requests} requests failed or saw a backwards epoch"
        ));
    }
    if latencies.is_empty() {
        return Err("no successful requests were measured".into());
    }

    latencies.sort_unstable();
    let mean_ns = latencies.iter().sum::<u64>() / latencies.len() as u64;
    let (p50, p95) = (
        percentile_ns(&latencies, 50.0),
        percentile_ns(&latencies, 95.0),
    );
    let (p99, p999) = (
        percentile_ns(&latencies, 99.0),
        percentile_ns(&latencies, 99.9),
    );
    let qps = latencies.len() as f64 / (wall_ns.max(1) as f64 / 1e9);

    let json = JsonValue::Obj(vec![
        ("preset".into(), JsonValue::Str(preset.name().into())),
        ("scale".into(), JsonValue::Str("tiny".into())),
        ("seed".into(), JsonValue::Num(SEED as f64)),
        ("calibration_ns".into(), JsonValue::Num(calib as f64)),
        ("concurrency".into(), JsonValue::Num(concurrency as f64)),
        ("open_rps".into(), JsonValue::Num(open_rps as f64)),
        ("days".into(), JsonValue::Num(n_days as f64)),
        ("final_epoch".into(), JsonValue::Num(final_epoch as f64)),
        ("requests".into(), JsonValue::Num(requests as f64)),
        ("errors".into(), JsonValue::Num(errors as f64)),
        ("wall_ns".into(), JsonValue::Num(wall_ns as f64)),
        ("qps".into(), JsonValue::Num(qps)),
        ("mean_ns".into(), JsonValue::Num(mean_ns as f64)),
        ("p50_ns".into(), JsonValue::Num(p50 as f64)),
        ("p95_ns".into(), JsonValue::Num(p95 as f64)),
        ("p99_ns".into(), JsonValue::Num(p99 as f64)),
        ("p999_ns".into(), JsonValue::Num(p999 as f64)),
    ]);
    std::fs::write(&out, json.render_pretty()).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out} ({} requests over {} epochs: {qps:.0} qps, \
         p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms)",
        latencies.len(),
        final_epoch,
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6,
        p999 as f64 / 1e6
    );

    if let Some(baseline_path) = gate {
        let (ratio, base_ratio) = calibrated_gate(
            &baseline_path,
            "mean_ns",
            mean_ns,
            calib,
            SERVE_GATE_TOLERANCE,
        )?;
        println!(
            "gate: calibrated mean-latency ratio {ratio:.3} vs baseline {base_ratio:.3} \
             (tolerance {SERVE_GATE_TOLERANCE}x)"
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
