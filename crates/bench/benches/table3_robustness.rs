//! Table III: robustness against injected confirmation delays.
//!
//! Sweeps the batch-confirmation delay probability `p_d ∈ {0.2, 0.6, 1.0}`
//! (Section V-D's synthetic-dataset protocol) on both datasets and reports
//! MAE / P95 / β50 for the baselines and DLInfMA. The paper's finding to
//! reproduce: annotation-based methods (Annotation, GeoCloud, GeoRank,
//! UNet-based) degrade sharply with `p_d` — ultimately below Geocoding —
//! while DLInfMA and the candidate heuristics stay stable.

use criterion::{criterion_group, criterion_main, Criterion};
use dlinfma_core::DlInfMaConfig;
use dlinfma_eval::{evaluate_mean, render_metrics_table, ExperimentWorld, Method};
use dlinfma_synth::{world_config, DelayConfig, Preset, Scale};

/// World seeds each method is averaged over.
const SEEDS: [u64; 2] = [1, 2];

fn print_table3() {
    println!("\n===== Table III: robustness to confirmation delays =====");
    let methods = [
        Method::Geocoding,
        Method::Annotation,
        Method::GeoCloud,
        Method::GeoRank,
        Method::UNetBased,
        Method::MinDist,
        Method::MaxTC,
        Method::MaxTcIlc,
        Method::DlInfMa,
    ];
    for preset in [Preset::DowBJ, Preset::SubBJ] {
        for p_delay in [0.2, 0.6, 1.0] {
            let mut cfg = world_config(preset, Scale::Small);
            cfg.delays = DelayConfig::sweep(p_delay);
            let mut pcfg = DlInfMaConfig::fast();
            pcfg.clustering_distance_m = match preset {
                Preset::DowBJ => 30.0,
                Preset::SubBJ => 40.0,
            };
            let worlds: Vec<ExperimentWorld> = SEEDS
                .iter()
                .map(|&s| ExperimentWorld::build_from(&cfg, s, pcfg))
                .collect();
            let results: Vec<_> = methods.iter().map(|&m| evaluate_mean(&worlds, m)).collect();
            println!(
                "{}",
                render_metrics_table(&format!("{} — p_d = {p_delay}", preset.name()), &results)
            );
        }
    }
}

fn bench_injection(c: &mut Criterion) {
    print_table3();
    // Criterion target: the delay-injection pass itself.
    let (_, ds) = dlinfma_synth::generate(Preset::DowBJ, Scale::Small, 1);
    let mut group = c.benchmark_group("table3/delay_injection");
    group.sample_size(20);
    group.bench_function("p=0.6", |b| {
        b.iter_batched(
            || ds.clone(),
            |mut d| {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(0);
                dlinfma_synth::inject_delays(&mut d, &DelayConfig::sweep(0.6), &mut rng);
                d
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_injection);
criterion_main!(benches);
