//! Table I: dataset statistics for the two synthetic datasets.
//!
//! Prints the per-dataset summary the paper tabulates (addresses, trips,
//! waybills, GPS fixes, splits) and times world generation with Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use dlinfma_eval::{dataset_stats, multi_location_building_fraction};
use dlinfma_synth::{generate, spatial_split, Preset, Scale};

fn print_table1() {
    println!("\n===== Table I: dataset statistics (synthetic substitutes) =====");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>10} {:>8} {:>8} {:>8} {:>12}",
        "Dataset",
        "addresses",
        "buildings",
        "trips",
        "waybills",
        "GPS fixes",
        "train",
        "val",
        "test",
        "multi-bldg %"
    );
    for preset in [Preset::DowBJ, Preset::SubBJ] {
        let (_, ds) = generate(preset, Scale::Small, 1);
        let s = dataset_stats(&ds);
        let split = spatial_split(&ds, 0.6, 0.2);
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>12} {:>10} {:>8} {:>8} {:>8} {:>12.1}",
            preset.name(),
            s.n_addresses,
            s.n_buildings,
            s.n_trips,
            s.n_waybills,
            s.n_gps_points,
            split.train.len(),
            split.val.len(),
            split.test.len(),
            multi_location_building_fraction(&ds) * 100.0
        );
    }
    println!();
}

fn bench_generation(c: &mut Criterion) {
    print_table1();
    let mut group = c.benchmark_group("table1/world_generation");
    group.sample_size(10);
    for preset in [Preset::DowBJ, Preset::SubBJ] {
        group.bench_function(preset.name(), |b| {
            b.iter(|| generate(preset, Scale::Small, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
