//! Figure 9: the four dataset distributions.
//!
//! (a) distinct delivery locations per building, (b) deliveries per address
//! (cumulative), (c) stay points per trip, (d) location candidates per
//! address. Prints each series and benchmarks the stay-point extraction that
//! feeds (c)/(d).

use criterion::{criterion_group, criterion_main, Criterion};
use dlinfma_core::{extract_stay_points, DlInfMa, DlInfMaConfig, ExtractionConfig};
use dlinfma_eval::stats;
use dlinfma_synth::{generate, Preset, Scale};

fn print_figure9() {
    println!("\n===== Figure 9: dataset distributions =====");
    for preset in [Preset::DowBJ, Preset::SubBJ] {
        let (_, ds) = generate(preset, Scale::Small, 1);
        let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
        let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        let samples: Vec<_> = dlinfma.samples().cloned().collect();

        println!("\n--- {} ---", preset.name());

        // (a) distinct delivery locations per building.
        let dist_a = stats::building_location_distribution(&ds);
        let total: usize = dist_a.iter().sum();
        print!("Fig 9(a) locations/building:");
        for (k, &n) in dist_a.iter().enumerate().take(5) {
            print!("  {}:{:.1}%", k + 1, n as f64 / total as f64 * 100.0);
        }
        println!(
            "   (multi-location buildings: {:.1}%)",
            stats::multi_location_building_fraction(&ds) * 100.0
        );

        // (b) deliveries per address: cumulative distribution points.
        let dist_b = stats::deliveries_per_address(&ds);
        print!("Fig 9(b) deliveries/address CDF:");
        for q in [0.25, 0.5, 0.75, 0.9, 1.0] {
            let idx = ((dist_b.len() - 1) as f64 * q) as usize;
            print!("  p{:.0}:{}", q * 100.0, dist_b[idx]);
        }
        println!();

        // (c) stay points per trip.
        let dist_c = stats::stays_per_trip(&stays);
        println!(
            "Fig 9(c) stays/trip: mean {:.1}  (paper: 24 DowBJ / 27 SubBJ)",
            stats::mean(&dist_c)
        );

        // (d) candidates per address.
        let dist_d = stats::candidates_per_address(&samples);
        println!(
            "Fig 9(d) candidates/address: mean {:.1}  (paper: 32 DowBJ / 38 SubBJ)",
            stats::mean(&dist_d)
        );
    }
    println!();
}

fn bench_extraction(c: &mut Criterion) {
    print_figure9();
    let (_, ds) = generate(Preset::DowBJ, Scale::Small, 1);
    let cfg = ExtractionConfig::paper_defaults();
    let mut group = c.benchmark_group("figure9/stay_point_extraction");
    group.sample_size(10);
    group.bench_function("sequential", |b| b.iter(|| extract_stay_points(&ds, &cfg)));
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
