//! Table II: overall effectiveness of every baseline, DLInfMA, its model
//! variants and its feature ablations, on both datasets.
//!
//! This is the paper's headline table. Absolute numbers differ from the
//! JD Logistics testbed (the substrate is a simulator), but the ordering —
//! DLInfMA best, supervised baselines next, Annotation/MaxTC worst — is
//! what the reproduction checks. Criterion additionally times DLInfMA
//! end-to-end inference.

use criterion::{criterion_group, criterion_main, Criterion};
use dlinfma_eval::{evaluate, evaluate_mean, render_metrics_table, ExperimentWorld, Method};
use dlinfma_synth::{Preset, Scale};

/// World seeds each method is averaged over (the synthetic test regions are
/// small, so a single world's ordering is noisy).
const SEEDS: [u64; 2] = [1, 2];

fn print_table2() {
    println!(
        "\n===== Table II: overall effectiveness (mean over {} world seeds) =====",
        SEEDS.len()
    );
    for preset in [Preset::DowBJ, Preset::SubBJ] {
        let worlds: Vec<ExperimentWorld> = SEEDS
            .iter()
            .map(|&s| ExperimentWorld::build(preset, Scale::Small, s))
            .collect();
        let blocks: [(&str, Vec<Method>); 3] = [
            ("baselines + DLInfMA", Method::baselines_and_main()),
            ("model variants", Method::variants()),
            ("feature ablations", Method::ablations()),
        ];
        for (title, methods) in blocks {
            let results: Vec<_> = methods
                .into_iter()
                .map(|m| evaluate_mean(&worlds, m))
                .collect();
            println!(
                "{}",
                render_metrics_table(&format!("{} — {title}", preset.name()), &results)
            );
        }
    }
}

fn bench_inference(c: &mut Criterion) {
    print_table2();
    // Criterion target: one LocMatcher training run plus the cheap
    // heuristic, to keep `cargo bench` affordable on small machines.
    let world = ExperimentWorld::build(Preset::DowBJ, Scale::Small, 1);
    let train = world.train_samples();
    let val = world.val_samples();
    let mut group = c.benchmark_group("table2/evaluation");
    group.sample_size(10);
    group.bench_function("LocMatcher_train", |b| {
        b.iter(|| {
            let mut m = dlinfma_core::LocMatcher::new(world.dlinfma.config().model);
            m.train(&train, &val);
            m
        })
    });
    group.bench_function("MaxTC-ILC", |b| {
        b.iter(|| evaluate(&world, Method::MaxTcIlc))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
