//! Section V-F: pipeline throughput and training-time comparison.
//!
//! The paper reports (1) stay-point extraction over 66.1 M points in 7 min
//! with trajectory-level parallelization, (2) bi-weekly candidate-pool
//! construction in 1 min, and (3) training times ordered
//! GeoRank < DLInfMA < UNet-based. This bench measures the same quantities
//! on the synthetic substrate: absolute numbers differ, the ordering and the
//! parallel speedup are the reproduced shape.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dlinfma_baselines::{GeoRank, UNetBaseline, UNetConfig};
use dlinfma_core::{
    build_pool, build_pool_incremental, extract_stay_points, extract_stay_points_parallel,
    ExtractionConfig, LocMatcher,
};
use dlinfma_eval::ExperimentWorld;
use dlinfma_pool::Pool;
use dlinfma_synth::{generate, Preset, Scale};
use std::time::Instant;

fn print_training_comparison() {
    println!("\n===== Section V-F: training-time comparison =====");
    let world = ExperimentWorld::build(Preset::DowBJ, Scale::Small, 1);

    let t0 = Instant::now();
    let _ = GeoRank::fit(&world.dataset, &world.ann, &world.split.train, &world.gt);
    let georank = t0.elapsed();

    let t0 = Instant::now();
    let mut lm = LocMatcher::new(world.dlinfma.config().model);
    lm.train(&world.train_samples(), &world.val_samples());
    let dlinfma = t0.elapsed();

    let t0 = Instant::now();
    let _ = UNetBaseline::fit(
        &world.ann,
        &world.split.train,
        &world.gt,
        &UNetConfig::default(),
    );
    let unet = t0.elapsed();

    println!("GeoRank    {georank:>10.2?}   (paper: 0.2 min, fastest)");
    println!("DLInfMA    {dlinfma:>10.2?}   (paper: 13.6 min)");
    println!("UNet-based {unet:>10.2?}   (paper: 27.0 min, slowest)");
    println!();
}

fn bench_pipeline(c: &mut Criterion) {
    print_training_comparison();

    let (_, ds) = generate(Preset::DowBJ, Scale::Small, 1);
    let cfg = ExtractionConfig::paper_defaults();
    let n_points = ds.total_gps_points() as u64;

    let mut group = c.benchmark_group("secVF/stay_point_extraction");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_points));
    group.bench_function("sequential", |b| b.iter(|| extract_stay_points(&ds, &cfg)));
    let pool = Pool::new(4);
    group.bench_function("parallel_4", |b| {
        b.iter(|| extract_stay_points_parallel(&ds, &cfg, &pool))
    });
    group.finish();

    let stays = extract_stay_points(&ds, &cfg);
    let mut group = c.benchmark_group("secVF/candidate_pool");
    group.sample_size(10);
    group.bench_function("one_shot", |b| b.iter(|| build_pool(&ds, &stays, 40.0)));
    group.bench_function("biweekly_incremental", |b| {
        b.iter(|| build_pool_incremental(&ds, &stays, 40.0, 14.0 * 86_400.0))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
