//! Figure 10: (a) clustering-distance sensitivity; (b) accuracy versus the
//! number of deliveries per address.
//!
//! 10(a): MAE of DLInfMA as the candidate clustering threshold `D` sweeps
//! {20, 30, 40, 50, 60} m on both datasets — the paper reports a U-shape
//! with the minimum at 40 m.
//!
//! 10(b): MAE of five representative methods over equal-frequency delivery
//! -count groups on DowBJ — annotation-based methods improve with more
//! deliveries; DLInfMA stays best throughout.

use criterion::{criterion_group, criterion_main, Criterion};
use dlinfma_core::DlInfMaConfig;
use dlinfma_eval::{evaluate, evaluate_errors, render_series, ExperimentWorld, Method};
use dlinfma_synth::{world_config, Preset, Scale};

fn figure10a() {
    println!("\n===== Figure 10(a): MAE vs clustering distance D =====");
    for preset in [Preset::DowBJ, Preset::SubBJ] {
        let mut rows = Vec::new();
        for d in [20.0, 30.0, 40.0, 50.0, 60.0] {
            let cfg = world_config(preset, Scale::Small);
            let mut pcfg = DlInfMaConfig::fast();
            pcfg.clustering_distance_m = d;
            let world = ExperimentWorld::build_from(&cfg, 1, pcfg);
            let r = evaluate(&world, Method::DlInfMa);
            rows.push((format!("D = {d:.0} m"), r.metrics.mae));
        }
        println!(
            "{}",
            render_series(preset.name(), "clustering distance", "MAE (m)", &rows)
        );
    }
}

fn figure10b() {
    println!("===== Figure 10(b): MAE vs number of deliveries (SynthDowBJ) =====");
    let world = ExperimentWorld::build(Preset::DowBJ, Scale::Small, 1);
    // Equal-frequency tercile boundaries over the test split.
    let mut counts: Vec<usize> = world
        .split
        .test
        .iter()
        .map(|&a| world.dlinfma.sample(a).map_or(0, |s| s.n_deliveries))
        .collect();
    let mut sorted = counts.clone();
    sorted.sort_unstable();
    let t1 = sorted[sorted.len() / 3];
    let t2 = sorted[2 * sorted.len() / 3];
    println!("tercile boundaries: <= {t1}, <= {t2}, > {t2} deliveries\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "Method", "few", "medium", "many"
    );
    for method in [
        Method::GeoCloud,
        Method::MaxTcIlc,
        Method::GeoRank,
        Method::UNetBased,
        Method::DlInfMa,
    ] {
        let errors = evaluate_errors(&world, method);
        let mut groups = [(0.0, 0usize); 3];
        for (err, &cnt) in errors.iter().zip(&counts) {
            let g = if cnt <= t1 {
                0
            } else if cnt <= t2 {
                1
            } else {
                2
            };
            groups[g].0 += err;
            groups[g].1 += 1;
        }
        let mae = |g: (f64, usize)| if g.1 == 0 { f64::NAN } else { g.0 / g.1 as f64 };
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1}",
            method.name(),
            mae(groups[0]),
            mae(groups[1]),
            mae(groups[2])
        );
    }
    let _ = &mut counts;
    println!();
}

fn bench_sweep(c: &mut Criterion) {
    figure10a();
    figure10b();
    // Criterion target: candidate-pool construction across D values.
    let (_, ds) = dlinfma_synth::generate(Preset::DowBJ, Scale::Small, 1);
    let stays =
        dlinfma_core::extract_stay_points(&ds, &dlinfma_core::ExtractionConfig::paper_defaults());
    let mut group = c.benchmark_group("figure10/pool_construction");
    group.sample_size(10);
    for d in [20.0, 40.0, 60.0] {
        group.bench_function(format!("D={d}"), |b| {
            b.iter(|| dlinfma_core::build_pool(&ds, &stays, d))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
