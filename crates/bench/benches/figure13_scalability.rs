//! Figure 13: inference-time scalability.
//!
//! Times per-address inference of the trained models as the number of
//! queried addresses grows, reporting throughput. The paper's shape to
//! reproduce: time grows linearly in the number of addresses; heuristics
//! are fastest, GeoRank is slower than GeoCloud (quadratic in annotations),
//! DLInfMA is faster than UNet-based and sustains >= 1 K addresses/s.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlinfma_baselines::{geocloud, max_tc_ilc, GeoRank, UNetBaseline, UNetConfig};
use dlinfma_core::LocMatcher;
use dlinfma_eval::ExperimentWorld;
use dlinfma_synth::{AddressId, Preset, Scale};
use std::hint::black_box;
use std::time::Instant;

struct Fixture {
    world: ExperimentWorld,
    locmatcher: LocMatcher,
    georank: GeoRank,
    unet: UNetBaseline,
}

fn fixture() -> Fixture {
    let world = ExperimentWorld::build(Preset::DowBJ, Scale::Small, 1);
    let mut locmatcher = LocMatcher::new(world.dlinfma.config().model);
    locmatcher.train(&world.train_samples(), &world.val_samples());
    let georank = GeoRank::fit(&world.dataset, &world.ann, &world.split.train, &world.gt);
    let unet = UNetBaseline::fit(
        &world.ann,
        &world.split.train,
        &world.gt,
        &UNetConfig::default(),
    );
    Fixture {
        world,
        locmatcher,
        georank,
        unet,
    }
}

/// Addresses to query: the test split cycled up to `n`.
fn query_set(world: &ExperimentWorld, n: usize) -> Vec<AddressId> {
    world.split.test.iter().copied().cycle().take(n).collect()
}

fn print_throughput(fx: &Fixture) {
    println!("\n===== Figure 13: inference throughput (addresses/s) =====");
    let n = 1000;
    let addrs = query_set(&fx.world, n);

    let time = |name: &str, f: &mut dyn FnMut(AddressId)| {
        let t0 = Instant::now();
        for &a in &addrs {
            f(a);
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{name:<12} {:>10.0} addr/s  ({:.2} ms / 1K)",
            n as f64 / dt,
            dt * 1e3
        );
    };

    let pool = fx.world.dlinfma.pool();
    time("MaxTC-ILC", &mut |a| {
        if let Some(s) = fx.world.dlinfma.sample(a) {
            black_box(max_tc_ilc(std::slice::from_ref(s), pool));
        }
    });
    time("GeoCloud", &mut |a| {
        let ann = &fx.world.ann;
        black_box(geocloud_single(ann, a));
    });
    time("GeoRank", &mut |a| {
        black_box(fx.georank.infer(&fx.world.dataset, &fx.world.ann, a));
    });
    time("DLInfMA", &mut |a| {
        if let Some(s) = fx.world.dlinfma.sample(a) {
            black_box(fx.locmatcher.predict(s));
        }
    });
    time("UNet-based", &mut |a| {
        black_box(fx.unet.infer(&fx.world.ann, a));
    });
    println!();
}

/// GeoCloud for a single address (DBSCAN over its annotations).
fn geocloud_single(
    ann: &dlinfma_baselines::AnnotatedLocations,
    addr: AddressId,
) -> Option<dlinfma_geo::Point> {
    let single =
        dlinfma_baselines::AnnotatedLocations::from_parts(vec![(addr, ann.of(addr).to_vec())]);
    geocloud(&single, 20.0).infer(addr)
}

fn bench_scalability(c: &mut Criterion) {
    let fx = fixture();
    print_throughput(&fx);

    let mut group = c.benchmark_group("figure13/inference");
    group.sample_size(10);
    for n in [100usize, 300, 1000] {
        let addrs = query_set(&fx.world, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("DLInfMA", n), &addrs, |b, addrs| {
            b.iter(|| {
                for &a in addrs {
                    if let Some(s) = fx.world.dlinfma.sample(a) {
                        black_box(fx.locmatcher.predict(s));
                    }
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("UNet-based", n), &addrs, |b, addrs| {
            b.iter(|| {
                for &a in addrs {
                    black_box(fx.unet.infer(&fx.world.ann, a));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("GeoRank", n), &addrs, |b, addrs| {
            b.iter(|| {
                for &a in addrs {
                    black_box(fx.georank.infer(&fx.world.dataset, &fx.world.ann, a));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
