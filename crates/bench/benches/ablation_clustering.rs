//! Ablation: candidate-pool clustering choices (Section III-B).
//!
//! The paper argues for threshold-driven hierarchical clustering over
//! k-means (needs `k`), density-based methods (need a density, produce
//! irregular shapes) and grid merging (splits locations at cell
//! boundaries). This bench quantifies the trade-off on the same stay
//! points: number of generated locations, and how well the generated pool
//! *covers* the ground-truth delivery locations (mean / p95 distance from
//! each delivered address's true location to its nearest generated
//! location). A good pool is small AND close.

use criterion::{criterion_group, criterion_main, Criterion};
use dlinfma_cluster::{
    dbscan, grid_clusters, hierarchical_cluster, kmeans, optics_extract, DbscanConfig, OpticsConfig,
};
use dlinfma_core::{extract_stay_points, ExtractionConfig};
use dlinfma_geo::{centroid, KdTree, Point};
use dlinfma_synth::{generate, Preset, Scale};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;

/// Centroids of labelled groups (noise/None dropped).
fn centroids_of(points: &[Point], labels: &[Option<usize>]) -> Vec<Point> {
    let mut groups: HashMap<usize, Vec<Point>> = HashMap::new();
    for (p, l) in points.iter().zip(labels) {
        if let Some(c) = l {
            groups.entry(*c).or_default().push(*p);
        }
    }
    groups.into_values().filter_map(|g| centroid(&g)).collect()
}

fn coverage(pool: &[Point], truths: &[Point]) -> (f64, f64) {
    let tree = KdTree::build(pool.iter().map(|&p| (p, ())).collect());
    let mut ds: Vec<f64> = truths
        .iter()
        .filter_map(|t| tree.nearest(t).map(|(_, _, d)| d))
        .collect();
    ds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mae = ds.iter().sum::<f64>() / ds.len().max(1) as f64;
    let p95 = ds[(ds.len() as f64 * 0.95) as usize - 1];
    (mae, p95)
}

fn print_ablation() {
    println!("\n===== Ablation: candidate-pool clustering choice =====");
    let (city, ds) = generate(Preset::DowBJ, Scale::Small, 1);
    let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
    let points: Vec<Point> = stays
        .iter()
        .flat_map(|t| t.stays.iter().map(|s| s.pos))
        .collect();
    let mut delivered: Vec<u32> = ds.waybills.iter().map(|w| w.address.0).collect();
    delivered.sort_unstable();
    delivered.dedup();
    let truths: Vec<Point> = delivered
        .iter()
        .map(|&a| city.addresses[a as usize].true_delivery_location)
        .collect();

    println!(
        "{} stay points, {} delivered addresses\n",
        points.len(),
        truths.len()
    );
    println!(
        "{:<24} {:>10} {:>12} {:>12}",
        "Method", "locations", "cover MAE", "cover P95"
    );

    let report = |name: &str, pool: Vec<Point>| {
        let (mae, p95) = coverage(&pool, &truths);
        println!("{name:<24} {:>10} {:>12.1} {:>12.1}", pool.len(), mae, p95);
    };

    // The paper's choice.
    report(
        "hierarchical D=40",
        hierarchical_cluster(&points, 40.0)
            .iter()
            .map(|c| c.centroid)
            .collect(),
    );
    // Grid merging (DLInfMA-Grid): more locations from boundary splits.
    report(
        "grid 40x40",
        grid_clusters(&points, 40.0)
            .iter()
            .map(|c| c.centroid)
            .collect(),
    );
    // DBSCAN: density threshold produces irregular merged regions.
    for (eps, min_pts) in [(20.0, 3), (40.0, 3)] {
        let labels = dbscan(&points, &DbscanConfig { eps, min_pts });
        report(
            &format!("dbscan eps={eps} min={min_pts}"),
            centroids_of(&points, &labels),
        );
    }
    // OPTICS with a cut.
    let labels = optics_extract(
        &points,
        &OpticsConfig {
            max_eps: 60.0,
            min_pts: 3,
        },
        40.0,
    );
    report("optics cut=40", centroids_of(&points, &labels));
    // k-means needs k; sweep to show the sensitivity the paper criticizes.
    for k_frac in [0.5, 1.0, 2.0] {
        let k_ref = hierarchical_cluster(&points, 40.0).len();
        let k = ((k_ref as f64 * k_frac) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(0);
        let res = kmeans(&points, k, 50, &mut rng).expect("non-empty");
        report(&format!("k-means k={k}"), res.centers);
    }
    println!();
}

fn bench_clustering(c: &mut Criterion) {
    print_ablation();
    let (_, ds) = generate(Preset::DowBJ, Scale::Small, 1);
    let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
    let points: Vec<Point> = stays
        .iter()
        .flat_map(|t| t.stays.iter().map(|s| s.pos))
        .collect();
    let mut group = c.benchmark_group("ablation/clustering");
    group.sample_size(10);
    group.bench_function("hierarchical", |b| {
        b.iter(|| hierarchical_cluster(&points, 40.0))
    });
    group.bench_function("grid", |b| b.iter(|| grid_clusters(&points, 40.0)));
    group.bench_function("dbscan", |b| {
        b.iter(|| {
            dbscan(
                &points,
                &DbscanConfig {
                    eps: 20.0,
                    min_pts: 3,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
