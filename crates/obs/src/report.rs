//! Typed pipeline run reports.
//!
//! A [`PipelineReport`] is the structured summary `DlInfMa::prepare` /
//! `train` return alongside their normal results: wall-clock duration per
//! stage plus the data funnel the paper's Fig. 3 pipeline implies
//! (raw points → filtered points → stay points → clusters → candidates
//! retrieved → samples labelled). Unlike spans and metrics it does not
//! depend on the global collector being enabled — the counts and a handful
//! of `Instant` reads are cheap enough to populate unconditionally.

use crate::json::JsonValue;

/// Canonical stage names, shared by spans, reports and exporters so the
/// JSON output and the rendered tables always agree.
pub mod stage {
    /// Per-point noise filtering (paper Fig. 3 "noise filtering").
    pub const NOISE_FILTER: &str = "noise-filter";
    /// Stay-point detection over filtered trajectories.
    pub const STAY_POINTS: &str = "stay-point-extraction";
    /// Hierarchical clustering of stay points into the candidate pool.
    pub const CLUSTERING: &str = "clustering";
    /// Temporal-upper-bound candidate retrieval per address.
    pub const RETRIEVAL: &str = "retrieval";
    /// Candidate feature extraction.
    pub const FEATURES: &str = "feature-extraction";
    /// LocMatcher model training.
    pub const TRAINING: &str = "training";
    /// LocMatcher inference.
    pub const INFERENCE: &str = "inference";
}

/// One pipeline stage: wall-clock duration and item counts in/out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name; see [`stage`] for the canonical set.
    pub name: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Summed per-worker CPU time in nanoseconds, when the stage ran on
    /// multiple workers. `None` for serial stages (CPU == wall). With
    /// `workers > 1` the CPU sum exceeds the wall clock — reporting both
    /// keeps `--verbose` honest about parallel speedup instead of
    /// presenting summed worker time as elapsed time.
    pub cpu_ns: Option<u64>,
    /// Items entering the stage (e.g. raw points), when meaningful.
    pub items_in: Option<u64>,
    /// Items leaving the stage (e.g. filtered points), when meaningful.
    pub items_out: Option<u64>,
}

/// The data funnel across the whole pipeline. Each field counts items
/// surviving the corresponding stage; invariants between them are checked
/// by [`PipelineReport::check_funnel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FunnelCounts {
    /// GPS points before noise filtering.
    pub raw_points: u64,
    /// GPS points after noise filtering (≤ raw).
    pub filtered_points: u64,
    /// Stay points detected (≤ filtered, each aggregates ≥ 1 point).
    pub stay_points: u64,
    /// Clusters retained in the candidate pool (≤ stay points).
    pub clusters: u64,
    /// Candidate retrievals summed over all addresses (can exceed
    /// `clusters`: one cluster serves many addresses).
    pub candidates_retrieved: u64,
    /// Addresses with at least one retrieved candidate.
    pub addresses_sampled: u64,
    /// Samples that received a ground-truth label via `label_with`.
    pub samples_labelled: u64,
}

/// Progress snapshot for one training epoch, passed to the progress hook
/// of `LocMatcher::train_with_progress`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochProgress {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Validation loss after the epoch.
    pub val_loss: f64,
    /// Whether this epoch improved on the best validation loss so far.
    pub improved: bool,
}

/// Telemetry for one pool worker (or the caller helping a join), part of a
/// [`PoolReport`]. All counts are cumulative over the report's window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolWorkerReport {
    /// `worker-N` for pool threads, `caller` for the thread that joins
    /// scopes and helps drain the deques.
    pub label: String,
    /// Tasks executed by this worker.
    pub tasks: u64,
    /// Tasks popped from a sibling's deque.
    pub steals: u64,
    /// Wake-ups that found queued work somewhere but lost the race for it.
    pub steal_failures: u64,
    /// Deepest this worker's own deque ever got.
    pub queue_hwm: u64,
    /// Nanoseconds spent running tasks.
    pub busy_ns: u64,
    /// Nanoseconds spent parked waiting for work.
    pub idle_ns: u64,
}

/// Scheduler telemetry from `dlinfma-pool`, embedded in
/// [`PipelineReport`] (cumulative since pool creation) and
/// [`IngestReport`] (delta for that one ingest). Observation-only: the
/// counters never influence scheduling, so worker-count parity holds with
/// telemetry on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolReport {
    /// Worker threads the pool runs (1 = inline execution, no threads).
    pub threads: u64,
    /// Per-worker rows; the final row is the caller slot.
    pub workers: Vec<PoolWorkerReport>,
}

impl PoolReport {
    /// Tasks executed across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum()
    }

    /// Steals across all workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Per-worker difference `self − earlier` (saturating), used to turn
    /// two cumulative snapshots into a per-ingest delta. Workers are
    /// matched by position; a changed worker set yields `self` unchanged.
    pub fn minus(&self, earlier: &PoolReport) -> PoolReport {
        if earlier.workers.len() != self.workers.len() {
            return self.clone();
        }
        PoolReport {
            threads: self.threads,
            workers: self
                .workers
                .iter()
                .zip(&earlier.workers)
                .map(|(now, then)| PoolWorkerReport {
                    label: now.label.clone(),
                    tasks: now.tasks.saturating_sub(then.tasks),
                    steals: now.steals.saturating_sub(then.steals),
                    steal_failures: now.steal_failures.saturating_sub(then.steal_failures),
                    queue_hwm: now.queue_hwm, // high-water mark doesn't diff
                    busy_ns: now.busy_ns.saturating_sub(then.busy_ns),
                    idle_ns: now.idle_ns.saturating_sub(then.idle_ns),
                })
                .collect(),
        }
    }

    /// Renders the per-worker table.
    pub fn render_table(&self) -> String {
        let mut out = format!("== pool report ({} thread(s)) ==\n", self.threads);
        out.push_str(&format!(
            "{:<10} {:>8} {:>8} {:>10} {:>10} {:>12} {:>12}\n",
            "worker", "tasks", "steals", "steal-miss", "queue-hwm", "busy (ms)", "idle (ms)"
        ));
        for w in &self.workers {
            out.push_str(&format!(
                "{:<10} {:>8} {:>8} {:>10} {:>10} {:>12.3} {:>12.3}\n",
                w.label,
                w.tasks,
                w.steals,
                w.steal_failures,
                w.queue_hwm,
                w.busy_ns as f64 / 1e6,
                w.idle_ns as f64 / 1e6
            ));
        }
        out
    }

    /// Converts the report to a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let n = |v: u64| JsonValue::Num(v as f64);
        JsonValue::Obj(vec![
            ("threads".into(), n(self.threads)),
            (
                "workers".into(),
                JsonValue::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            JsonValue::Obj(vec![
                                ("label".into(), JsonValue::Str(w.label.clone())),
                                ("tasks".into(), n(w.tasks)),
                                ("steals".into(), n(w.steals)),
                                ("steal_failures".into(), n(w.steal_failures)),
                                ("queue_hwm".into(), n(w.queue_hwm)),
                                ("busy_ns".into(), n(w.busy_ns)),
                                ("idle_ns".into(), n(w.idle_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Per-stage durations and funnel counts for one pipeline run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PipelineReport {
    /// Stages in execution order.
    pub stages: Vec<StageReport>,
    /// The data funnel.
    pub funnel: FunnelCounts,
    /// Scheduler telemetry, cumulative since the pool was created. `None`
    /// when the producer did not sample its pool.
    pub pool: Option<PoolReport>,
}

impl PipelineReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a serial stage (CPU == wall), replacing a same-named entry if
    /// the stage re-ran.
    pub fn push_stage(
        &mut self,
        name: &'static str,
        duration_ns: u64,
        items_in: Option<u64>,
        items_out: Option<u64>,
    ) {
        self.push_stage_cpu(name, duration_ns, None, items_in, items_out);
    }

    /// Adds a stage with distinct wall-clock and summed-CPU durations (a
    /// stage that ran across pool workers), replacing a same-named entry.
    pub fn push_stage_cpu(
        &mut self,
        name: &'static str,
        duration_ns: u64,
        cpu_ns: Option<u64>,
        items_in: Option<u64>,
        items_out: Option<u64>,
    ) {
        let rec = StageReport {
            name,
            duration_ns,
            cpu_ns,
            items_in,
            items_out,
        };
        match self.stages.iter_mut().find(|s| s.name == name) {
            Some(slot) => *slot = rec,
            None => self.stages.push(rec),
        }
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Total duration across recorded stages, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.duration_ns).sum()
    }

    /// Checks the funnel invariants, returning a message per violation.
    /// An empty result means the run was structurally sound.
    pub fn check_funnel(&self) -> Vec<String> {
        let f = &self.funnel;
        let mut errs = Vec::new();
        let mut le = |label: &str, a: u64, b: u64| {
            if a > b {
                errs.push(format!("{label}: {a} > {b}"));
            }
        };
        le(
            "filtered_points <= raw_points",
            f.filtered_points,
            f.raw_points,
        );
        le(
            "stay_points <= filtered_points",
            f.stay_points,
            f.filtered_points,
        );
        le("clusters <= stay_points", f.clusters, f.stay_points);
        le(
            "clusters <= candidates_retrieved",
            f.clusters.min(1),
            f.candidates_retrieved.min(1),
        );
        le(
            "samples_labelled <= addresses_sampled",
            f.samples_labelled,
            f.addresses_sampled,
        );
        errs
    }

    /// Renders the report as a human-readable table. The `cpu (ms)` column
    /// shows summed per-worker time for stages that ran across the pool
    /// (`-` for serial stages, where CPU equals the wall clock).
    pub fn render_table(&self) -> String {
        let mut out = String::from("== pipeline report ==\n");
        out.push_str(&format!(
            "{:<26} {:>14} {:>12} {:>12} {:>12}\n",
            "stage", "wall (ms)", "cpu (ms)", "items in", "items out"
        ));
        for s in &self.stages {
            let fmt_opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
            let fmt_cpu = |v: Option<u64>| {
                v.map_or_else(|| "-".to_string(), |v| format!("{:.3}", v as f64 / 1e6))
            };
            out.push_str(&format!(
                "{:<26} {:>14.3} {:>12} {:>12} {:>12}\n",
                s.name,
                s.duration_ns as f64 / 1e6,
                fmt_cpu(s.cpu_ns),
                fmt_opt(s.items_in),
                fmt_opt(s.items_out)
            ));
        }
        let f = &self.funnel;
        out.push_str(&format!(
            "funnel: raw {} -> filtered {} -> stays {} -> clusters {} -> candidates {} -> labelled {}\n",
            f.raw_points,
            f.filtered_points,
            f.stay_points,
            f.clusters,
            f.candidates_retrieved,
            f.samples_labelled
        ));
        if let Some(pool) = &self.pool {
            out.push_str(&pool.render_table());
        }
        out
    }

    /// Converts the report to a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let f = &self.funnel;
        let mut obj = vec![
            (
                "stages".into(),
                JsonValue::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            JsonValue::Obj(vec![
                                ("name".into(), JsonValue::Str(s.name.to_string())),
                                ("duration_ns".into(), JsonValue::Num(s.duration_ns as f64)),
                                (
                                    "cpu_ns".into(),
                                    s.cpu_ns
                                        .map_or(JsonValue::Null, |v| JsonValue::Num(v as f64)),
                                ),
                                (
                                    "items_in".into(),
                                    s.items_in
                                        .map_or(JsonValue::Null, |v| JsonValue::Num(v as f64)),
                                ),
                                (
                                    "items_out".into(),
                                    s.items_out
                                        .map_or(JsonValue::Null, |v| JsonValue::Num(v as f64)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "funnel".into(),
                JsonValue::Obj(vec![
                    ("raw_points".into(), JsonValue::Num(f.raw_points as f64)),
                    (
                        "filtered_points".into(),
                        JsonValue::Num(f.filtered_points as f64),
                    ),
                    ("stay_points".into(), JsonValue::Num(f.stay_points as f64)),
                    ("clusters".into(), JsonValue::Num(f.clusters as f64)),
                    (
                        "candidates_retrieved".into(),
                        JsonValue::Num(f.candidates_retrieved as f64),
                    ),
                    (
                        "addresses_sampled".into(),
                        JsonValue::Num(f.addresses_sampled as f64),
                    ),
                    (
                        "samples_labelled".into(),
                        JsonValue::Num(f.samples_labelled as f64),
                    ),
                ]),
            ),
        ];
        if let Some(pool) = &self.pool {
            obj.push(("pool".into(), pool.to_json()));
        }
        JsonValue::Obj(obj)
    }
}

/// Per-ingest summary of one `Engine::ingest` call: what arrived, what the
/// candidate pool did, how much of the address space was invalidated, and
/// where the time went. Complements the cumulative [`PipelineReport`] the
/// engine also maintains.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IngestReport {
    /// Day index of the ingested batch (0 for a full-batch ingest).
    pub day: u32,
    /// Trips accepted this ingest.
    pub trips: u64,
    /// Waybills accepted this ingest.
    pub waybills: u64,
    /// Trips rejected (duplicate trip ids).
    pub rejected_trips: u64,
    /// Waybills rejected (unknown trip or out-of-range address).
    pub rejected_waybills: u64,
    /// Stay points extracted from the batch's trips.
    pub new_stays: u64,
    /// Candidates created by this ingest.
    pub clusters_added: u64,
    /// Candidates removed (absorbed by re-clustering) this ingest.
    pub clusters_removed: u64,
    /// Candidate pool size after the ingest.
    pub pool_size: u64,
    /// Addresses whose candidate sets or features were recomputed.
    pub dirty_addresses: u64,
    /// Total addresses known to the engine.
    pub total_addresses: u64,
    /// Stay-point extraction (noise filter + detection) wall-clock time, ns.
    pub extraction_ns: u64,
    /// Stay-point extraction CPU time summed across pool workers, ns. Equal
    /// to `extraction_ns` (minus scheduling overhead) when the pool is
    /// single-threaded; larger when extraction fanned out.
    pub extraction_cpu_ns: u64,
    /// Incremental clustering wall-clock time, ns.
    pub clustering_ns: u64,
    /// Clustering CPU time summed across pool workers (nearest-pair scans
    /// plus the serial merge loops of every re-clustered component), ns.
    /// Zero for grid mode, which has no merge phase.
    pub clustering_cpu_ns: u64,
    /// Candidate retrieval time (dirty addresses only), ns.
    pub retrieval_ns: u64,
    /// Feature recount time (dirty addresses only), ns.
    pub features_ns: u64,
    /// Artifact materialization (pool + samples) time, ns.
    pub materialize_ns: u64,
    /// Scheduler telemetry delta for this ingest (what the pool did while
    /// this batch was processed). `None` when the engine did not sample
    /// its pool.
    pub pool: Option<PoolReport>,
}

impl IngestReport {
    /// Total time across the recorded phases, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.extraction_ns
            + self.clustering_ns
            + self.retrieval_ns
            + self.features_ns
            + self.materialize_ns
    }

    /// Renders the report as one human-readable line (the CLI `replay`
    /// output format).
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "day {:>3}: trips {:>4} waybills {:>5} stays {:>5} | pool {:>5} (+{} -{}) | dirty addresses {} / {} | {:.3} ms",
            self.day,
            self.trips,
            self.waybills,
            self.new_stays,
            self.pool_size,
            self.clusters_added,
            self.clusters_removed,
            self.dirty_addresses,
            self.total_addresses,
            self.total_ns() as f64 / 1e6,
        );
        if self.rejected_trips > 0 || self.rejected_waybills > 0 {
            line.push_str(&format!(
                " | rejected trips {} waybills {}",
                self.rejected_trips, self.rejected_waybills
            ));
        }
        line
    }

    /// Converts the report to a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let n = |v: u64| JsonValue::Num(v as f64);
        let mut obj = vec![
            ("day".into(), n(u64::from(self.day))),
            ("trips".into(), n(self.trips)),
            ("waybills".into(), n(self.waybills)),
            ("rejected_trips".into(), n(self.rejected_trips)),
            ("rejected_waybills".into(), n(self.rejected_waybills)),
            ("new_stays".into(), n(self.new_stays)),
            ("clusters_added".into(), n(self.clusters_added)),
            ("clusters_removed".into(), n(self.clusters_removed)),
            ("pool_size".into(), n(self.pool_size)),
            ("dirty_addresses".into(), n(self.dirty_addresses)),
            ("total_addresses".into(), n(self.total_addresses)),
            ("extraction_ns".into(), n(self.extraction_ns)),
            ("extraction_cpu_ns".into(), n(self.extraction_cpu_ns)),
            ("clustering_ns".into(), n(self.clustering_ns)),
            ("clustering_cpu_ns".into(), n(self.clustering_cpu_ns)),
            ("retrieval_ns".into(), n(self.retrieval_ns)),
            ("features_ns".into(), n(self.features_ns)),
            ("materialize_ns".into(), n(self.materialize_ns)),
            ("total_ns".into(), n(self.total_ns())),
        ];
        if let Some(pool) = &self.pool {
            obj.push(("pool".into(), pool.to_json()));
        }
        JsonValue::Obj(obj)
    }
}

/// One fleet-mode ingest: the per-shard [`IngestReport`]s of a single day
/// batch fanned out across a `ShardedEngine`'s station shards, plus an
/// aggregate view for operators who want the day as one line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetIngestReport {
    /// Day index of the ingested batch.
    pub day: u32,
    /// `(shard index, that shard's report)`, ascending by shard index.
    pub shards: Vec<(u32, IngestReport)>,
}

impl FleetIngestReport {
    /// Sums the per-shard counters into one fleet-level [`IngestReport`].
    ///
    /// Counters and durations add across shards (shards ingest
    /// sequentially within a day, so summed wall time is the day's wall
    /// time); `total_addresses` takes the maximum because every shard
    /// holds the same address universe; the per-shard scheduler deltas are
    /// dropped (they overlap on the shared pool).
    pub fn aggregate(&self) -> IngestReport {
        let mut agg = IngestReport {
            day: self.day,
            ..IngestReport::default()
        };
        for (_, r) in &self.shards {
            agg.trips += r.trips;
            agg.waybills += r.waybills;
            agg.rejected_trips += r.rejected_trips;
            agg.rejected_waybills += r.rejected_waybills;
            agg.new_stays += r.new_stays;
            agg.clusters_added += r.clusters_added;
            agg.clusters_removed += r.clusters_removed;
            agg.pool_size += r.pool_size;
            agg.dirty_addresses += r.dirty_addresses;
            agg.total_addresses = agg.total_addresses.max(r.total_addresses);
            agg.extraction_ns += r.extraction_ns;
            agg.extraction_cpu_ns += r.extraction_cpu_ns;
            agg.clustering_ns += r.clustering_ns;
            agg.clustering_cpu_ns += r.clustering_cpu_ns;
            agg.retrieval_ns += r.retrieval_ns;
            agg.features_ns += r.features_ns;
            agg.materialize_ns += r.materialize_ns;
        }
        agg
    }

    /// Renders the aggregate as one line, suffixed with the shard count
    /// (the CLI `replay --shards` output format).
    pub fn render_line(&self) -> String {
        format!(
            "{} | shards {}",
            self.aggregate().render_line(),
            self.shards.len()
        )
    }

    /// Converts the report to a JSON object: the aggregate's fields plus a
    /// `shards` array of per-shard reports.
    pub fn to_json(&self) -> JsonValue {
        let JsonValue::Obj(mut obj) = self.aggregate().to_json() else {
            unreachable!("IngestReport::to_json returns an object");
        };
        obj.push((
            "shards".into(),
            JsonValue::Arr(self.shards.iter().map(|(_, r)| r.to_json()).collect()),
        ));
        JsonValue::Obj(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_report_aggregates_counters_and_keeps_shards() {
        let mk = |trips: u64, pool: u64| IngestReport {
            day: 3,
            trips,
            pool_size: pool,
            total_addresses: 100,
            extraction_ns: 10,
            ..IngestReport::default()
        };
        let fleet = FleetIngestReport {
            day: 3,
            shards: vec![(0, mk(4, 7)), (1, mk(6, 9))],
        };
        let agg = fleet.aggregate();
        assert_eq!(agg.day, 3);
        assert_eq!(agg.trips, 10);
        assert_eq!(agg.pool_size, 16);
        assert_eq!(agg.total_addresses, 100, "universe is shared, not summed");
        assert_eq!(agg.extraction_ns, 20);
        assert!(fleet.render_line().ends_with("| shards 2"));
        let JsonValue::Obj(obj) = fleet.to_json() else {
            panic!("object expected");
        };
        let shards = obj.iter().find(|(k, _)| k == "shards").unwrap();
        let JsonValue::Arr(arr) = &shards.1 else {
            panic!("array expected");
        };
        assert_eq!(arr.len(), 2);
    }

    #[test]
    fn push_stage_replaces_same_name() {
        let mut r = PipelineReport::new();
        r.push_stage(stage::CLUSTERING, 10, Some(5), Some(2));
        r.push_stage(stage::RETRIEVAL, 20, None, None);
        r.push_stage(stage::CLUSTERING, 30, Some(6), Some(3));
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stage(stage::CLUSTERING).unwrap().duration_ns, 30);
        assert_eq!(r.total_ns(), 50);
    }

    #[test]
    fn funnel_invariants_catch_violations() {
        let mut r = PipelineReport::new();
        r.funnel = FunnelCounts {
            raw_points: 100,
            filtered_points: 90,
            stay_points: 10,
            clusters: 4,
            candidates_retrieved: 12,
            addresses_sampled: 6,
            samples_labelled: 6,
        };
        assert!(r.check_funnel().is_empty());

        r.funnel.filtered_points = 200;
        let errs = r.check_funnel();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("filtered_points"));
    }

    #[test]
    fn ingest_report_line_and_json_cover_the_dirty_counts() {
        let r = IngestReport {
            day: 3,
            trips: 12,
            waybills: 140,
            new_stays: 150,
            clusters_added: 4,
            clusters_removed: 1,
            pool_size: 90,
            dirty_addresses: 35,
            total_addresses: 120,
            extraction_ns: 1_000_000,
            clustering_ns: 2_000_000,
            retrieval_ns: 500_000,
            features_ns: 500_000,
            materialize_ns: 1_000_000,
            ..IngestReport::default()
        };
        assert_eq!(r.total_ns(), 5_000_000);
        let line = r.render_line();
        assert!(line.contains("day   3"));
        assert!(line.contains("dirty addresses 35 / 120"));
        assert!(!line.contains("rejected"), "no rejects, no noise: {line}");
        let json = r.to_json().render();
        assert!(json.contains("\"dirty_addresses\""));
        assert!(json.contains("\"pool_size\""));

        let rejected = IngestReport {
            rejected_waybills: 2,
            ..r
        };
        assert!(rejected
            .render_line()
            .contains("rejected trips 0 waybills 2"));
    }

    #[test]
    fn table_and_json_mention_all_stages() {
        let mut r = PipelineReport::new();
        r.push_stage(stage::NOISE_FILTER, 1_000_000, Some(10), Some(9));
        r.push_stage(stage::TRAINING, 2_000_000, None, None);
        let table = r.render_table();
        assert!(table.contains("noise-filter"));
        assert!(table.contains("training"));
        let json = r.to_json().render();
        assert!(json.contains("\"noise-filter\""));
        assert!(json.contains("\"funnel\""));
    }

    #[test]
    fn pool_report_embeds_renders_and_diffs() {
        let snap = |tasks: u64| PoolReport {
            threads: 2,
            workers: vec![
                PoolWorkerReport {
                    label: "worker-0".into(),
                    tasks,
                    steals: tasks / 2,
                    busy_ns: tasks * 1_000,
                    queue_hwm: 4,
                    ..PoolWorkerReport::default()
                },
                PoolWorkerReport {
                    label: "caller".into(),
                    tasks: 1,
                    ..PoolWorkerReport::default()
                },
            ],
        };
        let earlier = snap(10);
        let now = snap(16);
        let delta = now.minus(&earlier);
        assert_eq!(delta.total_tasks(), 6); // workers 3 + 3; the caller row's 1 − 1 cancels
        assert_eq!(delta.workers[0].steals, 3);
        assert_eq!(delta.workers[0].queue_hwm, 4, "hwm is not a delta");

        let mut pipeline = PipelineReport::new();
        pipeline.pool = Some(now.clone());
        let table = pipeline.render_table();
        assert!(table.contains("pool report"), "{table}");
        assert!(table.contains("worker-0"));
        assert!(pipeline.to_json().render().contains("\"pool\""));

        let ingest = IngestReport {
            pool: Some(delta),
            ..IngestReport::default()
        };
        assert!(ingest.to_json().render().contains("\"steal_failures\""));
    }

    #[test]
    fn parallel_stage_reports_wall_and_cpu_separately() {
        let mut r = PipelineReport::new();
        // 8 workers each burning 1 ms: wall ~1 ms, CPU ~8 ms.
        r.push_stage_cpu(
            stage::NOISE_FILTER,
            1_000_000,
            Some(8_000_000),
            Some(10),
            Some(9),
        );
        r.push_stage(stage::CLUSTERING, 3_000_000, Some(9), Some(4));
        let s = r.stage(stage::NOISE_FILTER).unwrap();
        assert_eq!(s.duration_ns, 1_000_000);
        assert_eq!(s.cpu_ns, Some(8_000_000));
        // total_ns stays a wall-clock sum — CPU never double-counts into it.
        assert_eq!(r.total_ns(), 4_000_000);

        let table = r.render_table();
        assert!(table.contains("cpu (ms)"));
        assert!(table.contains("8.000"), "cpu column rendered: {table}");
        let json = r.to_json().render();
        assert!(json.contains("\"cpu_ns\""));

        // Serial stages render a dash and export null.
        let serial = r.stage(stage::CLUSTERING).unwrap();
        assert_eq!(serial.cpu_ns, None);
    }
}
