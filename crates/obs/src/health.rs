//! Ingest health monitors: per-day funnel deltas, rolling throughput, and
//! threshold-based anomaly flags.
//!
//! The deployed pipeline ingests one courier-day at a time; the paper's
//! robustness analysis (Section V-D) shows accuracy degrading quietly when
//! the input regime drifts — batch-confirmed waybills, erratic schedules,
//! sparse GPS days. A [`HealthMonitor`] watches the stream of
//! [`IngestReport`]s an engine emits and turns them into a machine-readable
//! [`HealthReport`]: one [`DayHealth`] row per ingest plus
//! [`HealthFlag`]s when a day crosses a threshold. The CLI renders this as
//! `dlinfma health` and embeds it in `--metrics-out` JSON.
//!
//! Flag logic is a pure function of the observed reports, so tests can
//! drive it with synthetic `IngestReport`s and deterministic expectations.

use crate::json::JsonValue;
use crate::report::IngestReport;

/// Tunable thresholds for anomaly detection.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthThresholds {
    /// A day whose dirty-address fraction exceeds this (after warmup)
    /// flags [`HealthFlag::DirtyFractionSpike`]. A spike means an ingest
    /// invalidated most of the address space — re-clustering churn far
    /// above the incremental steady state.
    pub dirty_fraction_spike: f64,
    /// Days observed before spike / slowdown flags may fire; the first
    /// ingests legitimately dirty everything and run cold.
    pub warmup_days: usize,
    /// A day whose per-trip ingest time exceeds the rolling mean by this
    /// factor flags [`HealthFlag::IngestSlowdown`].
    pub slowdown_factor: f64,
    /// Rolling window (in days) for the throughput baseline.
    pub window: usize,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        Self {
            dirty_fraction_spike: 0.5,
            warmup_days: 2,
            slowdown_factor: 4.0,
            window: 7,
        }
    }
}

/// One anomaly observed on one ingested day.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthFlag {
    /// The batch carried no trips and no waybills at all.
    ZeroTripDay,
    /// Trips arrived but stay-point extraction produced nothing — GPS is
    /// missing, too sparse, or entirely noise-filtered.
    ZeroStayDay {
        /// Trips in the batch that yielded no stays.
        trips: u64,
    },
    /// The engine holds waybills but zero materialized samples — the
    /// retrieval funnel has collapsed.
    ZeroSampleDay,
    /// Dirty-address fraction crossed the spike threshold after warmup.
    DirtyFractionSpike {
        /// Observed dirty fraction for the day.
        fraction: f64,
        /// The threshold it crossed.
        threshold: f64,
    },
    /// The batch contained rejected trips or waybills (duplicates,
    /// unknown trips, out-of-range addresses).
    RejectedInput {
        /// Rejected trips.
        trips: u64,
        /// Rejected waybills.
        waybills: u64,
    },
    /// Per-trip ingest time exceeded the rolling baseline by the
    /// slowdown factor.
    IngestSlowdown {
        /// This day's nanoseconds per trip.
        per_trip_ns: u64,
        /// Rolling-window baseline nanoseconds per trip.
        rolling_ns: u64,
    },
}

impl HealthFlag {
    /// Stable machine-readable kind tag (used in JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            HealthFlag::ZeroTripDay => "zero-trip-day",
            HealthFlag::ZeroStayDay { .. } => "zero-stay-day",
            HealthFlag::ZeroSampleDay => "zero-sample-day",
            HealthFlag::DirtyFractionSpike { .. } => "dirty-fraction-spike",
            HealthFlag::RejectedInput { .. } => "rejected-input",
            HealthFlag::IngestSlowdown { .. } => "ingest-slowdown",
        }
    }

    /// One-line human-readable description.
    pub fn describe(&self) -> String {
        match self {
            HealthFlag::ZeroTripDay => "batch carried no trips or waybills".into(),
            HealthFlag::ZeroStayDay { trips } => {
                format!("{trips} trips produced zero stay points")
            }
            HealthFlag::ZeroSampleDay => "no materialized samples despite ingested waybills".into(),
            HealthFlag::DirtyFractionSpike {
                fraction,
                threshold,
            } => format!(
                "dirty-address fraction {:.2} exceeds spike threshold {:.2}",
                fraction, threshold
            ),
            HealthFlag::RejectedInput { trips, waybills } => {
                format!("rejected {trips} trips / {waybills} waybills")
            }
            HealthFlag::IngestSlowdown {
                per_trip_ns,
                rolling_ns,
            } => format!(
                "{:.3} ms/trip vs rolling {:.3} ms/trip",
                *per_trip_ns as f64 / 1e6,
                *rolling_ns as f64 / 1e6
            ),
        }
    }
}

/// Health row for one ingested day: the funnel deltas plus derived rates
/// and any flags raised.
#[derive(Debug, Clone, PartialEq)]
pub struct DayHealth {
    /// Day index from the ingest report.
    pub day: u32,
    /// Trips accepted.
    pub trips: u64,
    /// Waybills accepted.
    pub waybills: u64,
    /// Stay points extracted.
    pub stays: u64,
    /// Addresses invalidated.
    pub dirty_addresses: u64,
    /// Addresses known to the engine.
    pub total_addresses: u64,
    /// `dirty_addresses / total_addresses` (0 when no addresses yet).
    pub dirty_fraction: f64,
    /// Net candidate-pool change (added − removed).
    pub pool_net: i64,
    /// Candidate pool size after the ingest.
    pub pool_size: u64,
    /// Total ingest wall time, nanoseconds.
    pub ingest_ns: u64,
    /// Nanoseconds per accepted trip (0 when no trips).
    pub per_trip_ns: u64,
    /// Materialized samples after this ingest (cumulative engine state).
    pub samples_total: u64,
    /// Anomalies raised for this day.
    pub flags: Vec<HealthFlag>,
}

/// Observes a stream of [`IngestReport`]s and accumulates [`DayHealth`]
/// rows with anomaly flags.
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    thresholds: HealthThresholds,
    days: Vec<DayHealth>,
    cumulative_waybills: u64,
}

impl HealthMonitor {
    /// A monitor with the given thresholds.
    pub fn new(thresholds: HealthThresholds) -> Self {
        Self {
            thresholds,
            days: Vec::new(),
            cumulative_waybills: 0,
        }
    }

    /// Folds one ingest into the monitor. `samples_total` is the engine's
    /// materialized sample count *after* the ingest (the monitor cannot
    /// derive it from the report alone). Returns the day's health row.
    pub fn observe(&mut self, rep: &IngestReport, samples_total: u64) -> &DayHealth {
        let t = &self.thresholds;
        self.cumulative_waybills += rep.waybills;
        let dirty_fraction = if rep.total_addresses > 0 {
            rep.dirty_addresses as f64 / rep.total_addresses as f64
        } else {
            0.0
        };
        let ingest_ns = rep.total_ns();
        let per_trip_ns = ingest_ns.checked_div(rep.trips).unwrap_or(0);

        let mut flags = Vec::new();
        if rep.trips == 0 && rep.waybills == 0 {
            flags.push(HealthFlag::ZeroTripDay);
        } else if rep.trips > 0 && rep.new_stays == 0 {
            flags.push(HealthFlag::ZeroStayDay { trips: rep.trips });
        }
        if samples_total == 0 && self.cumulative_waybills > 0 {
            flags.push(HealthFlag::ZeroSampleDay);
        }
        if rep.rejected_trips > 0 || rep.rejected_waybills > 0 {
            flags.push(HealthFlag::RejectedInput {
                trips: rep.rejected_trips,
                waybills: rep.rejected_waybills,
            });
        }
        let past_warmup = self.days.len() >= t.warmup_days;
        if past_warmup && dirty_fraction > t.dirty_fraction_spike {
            flags.push(HealthFlag::DirtyFractionSpike {
                fraction: dirty_fraction,
                threshold: t.dirty_fraction_spike,
            });
        }
        if past_warmup && per_trip_ns > 0 {
            let window: Vec<u64> = self
                .days
                .iter()
                .rev()
                .filter(|d| d.per_trip_ns > 0)
                .take(t.window)
                .map(|d| d.per_trip_ns)
                .collect();
            if !window.is_empty() {
                let rolling_ns = window.iter().sum::<u64>() / window.len() as u64;
                if rolling_ns > 0 && per_trip_ns as f64 > rolling_ns as f64 * t.slowdown_factor {
                    flags.push(HealthFlag::IngestSlowdown {
                        per_trip_ns,
                        rolling_ns,
                    });
                }
            }
        }

        self.days.push(DayHealth {
            day: rep.day,
            trips: rep.trips,
            waybills: rep.waybills,
            stays: rep.new_stays,
            dirty_addresses: rep.dirty_addresses,
            total_addresses: rep.total_addresses,
            dirty_fraction,
            pool_net: rep.clusters_added as i64 - rep.clusters_removed as i64,
            pool_size: rep.pool_size,
            ingest_ns,
            per_trip_ns,
            samples_total,
            flags,
        });
        self.days.last().expect("row pushed above")
    }

    /// Days observed so far.
    pub fn days(&self) -> &[DayHealth] {
        &self.days
    }

    /// Snapshot of everything observed so far.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            thresholds: self.thresholds.clone(),
            days: self.days.clone(),
        }
    }

    /// Forgets all observed days (thresholds are kept).
    pub fn reset(&mut self) {
        self.days.clear();
        self.cumulative_waybills = 0;
    }
}

/// The rendered/exported form of a [`HealthMonitor`]'s observations.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Thresholds the monitor ran with.
    pub thresholds: HealthThresholds,
    /// One row per observed ingest.
    pub days: Vec<DayHealth>,
}

impl HealthReport {
    /// Every `(day, flag)` pair across the run.
    pub fn anomalies(&self) -> Vec<(u32, &HealthFlag)> {
        self.days
            .iter()
            .flat_map(|d| d.flags.iter().map(move |f| (d.day, f)))
            .collect()
    }

    /// True when no day raised any flag.
    pub fn is_healthy(&self) -> bool {
        self.days.iter().all(|d| d.flags.is_empty())
    }

    /// Renders the per-day table plus an anomaly summary (the
    /// `dlinfma health` output).
    pub fn render(&self) -> String {
        let mut out = String::from("== ingest health ==\n");
        if self.days.is_empty() {
            out.push_str("(no ingests observed)\n");
            return out;
        }
        out.push_str(&format!(
            "{:>4} {:>6} {:>8} {:>6} {:>7} {:>10} {:>11} {:>10}  flags\n",
            "day", "trips", "waybills", "stays", "dirty%", "pool(+/-)", "ingest(ms)", "samples"
        ));
        for d in &self.days {
            let flags = if d.flags.is_empty() {
                "-".to_string()
            } else {
                d.flags
                    .iter()
                    .map(HealthFlag::kind)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "{:>4} {:>6} {:>8} {:>6} {:>6.1}% {:>5}({:+})  {:>10.3} {:>10}  {}\n",
                d.day,
                d.trips,
                d.waybills,
                d.stays,
                d.dirty_fraction * 100.0,
                d.pool_size,
                d.pool_net,
                d.ingest_ns as f64 / 1e6,
                d.samples_total,
                flags
            ));
        }
        let anomalies = self.anomalies();
        if anomalies.is_empty() {
            out.push_str(&format!(
                "healthy: {} day(s), no anomalies\n",
                self.days.len()
            ));
        } else {
            out.push_str(&format!(
                "{} anomal{} across {} day(s):\n",
                anomalies.len(),
                if anomalies.len() == 1 { "y" } else { "ies" },
                self.days.len()
            ));
            for (day, flag) in anomalies {
                out.push_str(&format!(
                    "  day {:>3}: {}: {}\n",
                    day,
                    flag.kind(),
                    flag.describe()
                ));
            }
        }
        out
    }

    /// Converts the report to a JSON object (the `health` key of
    /// `--metrics-out` files).
    pub fn to_json(&self) -> JsonValue {
        let n = |v: u64| JsonValue::Num(v as f64);
        let flag_json = |f: &HealthFlag| {
            JsonValue::Obj(vec![
                ("kind".into(), JsonValue::Str(f.kind().into())),
                ("detail".into(), JsonValue::Str(f.describe())),
            ])
        };
        JsonValue::Obj(vec![
            (
                "thresholds".into(),
                JsonValue::Obj(vec![
                    (
                        "dirty_fraction_spike".into(),
                        JsonValue::Num(self.thresholds.dirty_fraction_spike),
                    ),
                    (
                        "warmup_days".into(),
                        JsonValue::Num(self.thresholds.warmup_days as f64),
                    ),
                    (
                        "slowdown_factor".into(),
                        JsonValue::Num(self.thresholds.slowdown_factor),
                    ),
                    (
                        "window".into(),
                        JsonValue::Num(self.thresholds.window as f64),
                    ),
                ]),
            ),
            ("healthy".into(), JsonValue::Bool(self.is_healthy())),
            (
                "days".into(),
                JsonValue::Arr(
                    self.days
                        .iter()
                        .map(|d| {
                            JsonValue::Obj(vec![
                                ("day".into(), n(u64::from(d.day))),
                                ("trips".into(), n(d.trips)),
                                ("waybills".into(), n(d.waybills)),
                                ("stays".into(), n(d.stays)),
                                ("dirty_addresses".into(), n(d.dirty_addresses)),
                                ("total_addresses".into(), n(d.total_addresses)),
                                ("dirty_fraction".into(), JsonValue::Num(d.dirty_fraction)),
                                ("pool_net".into(), JsonValue::Num(d.pool_net as f64)),
                                ("pool_size".into(), n(d.pool_size)),
                                ("ingest_ns".into(), n(d.ingest_ns)),
                                ("per_trip_ns".into(), n(d.per_trip_ns)),
                                ("samples_total".into(), n(d.samples_total)),
                                (
                                    "flags".into(),
                                    JsonValue::Arr(d.flags.iter().map(flag_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "anomalies".into(),
                JsonValue::Arr(
                    self.anomalies()
                        .iter()
                        .map(|(day, f)| {
                            let mut obj = vec![("day".into(), n(u64::from(*day)))];
                            if let JsonValue::Obj(fields) = flag_json(f) {
                                obj.extend(fields);
                            }
                            JsonValue::Obj(obj)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(day: u32, trips: u64, stays: u64, dirty: u64, total: u64) -> IngestReport {
        IngestReport {
            day,
            trips,
            waybills: trips * 10,
            new_stays: stays,
            dirty_addresses: dirty,
            total_addresses: total,
            pool_size: 50,
            clusters_added: 2,
            clusters_removed: 1,
            extraction_ns: trips * 1_000_000,
            ..IngestReport::default()
        }
    }

    #[test]
    fn healthy_stream_raises_no_flags() {
        let mut m = HealthMonitor::default();
        for d in 0..5 {
            m.observe(&day(d, 10, 40, 12, 120), 100);
        }
        let r = m.report();
        assert!(r.is_healthy(), "{:?}", r.anomalies());
        assert_eq!(r.days.len(), 5);
        assert!(r.render().contains("no anomalies"));
    }

    #[test]
    fn warmup_suppresses_spike_then_flags_it() {
        let mut m = HealthMonitor::default();
        // Day 0–1: everything dirty (cold start) — warmup, no flag.
        m.observe(&day(0, 10, 40, 120, 120), 90);
        m.observe(&day(1, 10, 40, 110, 120), 95);
        assert!(m.days()[0].flags.is_empty() && m.days()[1].flags.is_empty());
        // Day 2: still >50% dirty — now flagged.
        let row = m.observe(&day(2, 10, 40, 80, 120), 100).clone();
        assert_eq!(row.flags.len(), 1);
        assert_eq!(row.flags[0].kind(), "dirty-fraction-spike");
    }

    #[test]
    fn spike_warmup_boundary_is_exact() {
        // The warmup contract: a spike-worthy day at index `warmup_days - 1`
        // must stay silent, the same day at index `warmup_days` must flag.
        // Exercised at a non-default warmup so an off-by-one against the
        // default can't hide.
        for warmup_days in [1usize, 3, 5] {
            let mut m = HealthMonitor::new(HealthThresholds {
                warmup_days,
                ..HealthThresholds::default()
            });
            for d in 0..warmup_days {
                let row = m.observe(&day(d as u32, 10, 40, 120, 120), 100).clone();
                assert!(
                    row.flags.is_empty(),
                    "warmup={warmup_days}: day {d} (< warmup) flagged: {:?}",
                    row.flags
                );
            }
            let row = m
                .observe(&day(warmup_days as u32, 10, 40, 120, 120), 100)
                .clone();
            assert_eq!(
                row.flags.iter().map(HealthFlag::kind).collect::<Vec<_>>(),
                vec!["dirty-fraction-spike"],
                "warmup={warmup_days}: day {warmup_days} (== warmup) must flag"
            );
        }
    }

    #[test]
    fn slowdown_warmup_boundary_is_exact() {
        // Same boundary for the throughput flag: a 100× slower day on index
        // `warmup_days - 1` is suppressed; on index `warmup_days` it fires.
        let warmup_days = 3usize;
        let slow_day = |d: u32| IngestReport {
            extraction_ns: 10 * 100_000_000,
            ..day(d, 10, 40, 10, 120)
        };
        let mut m = HealthMonitor::new(HealthThresholds {
            warmup_days,
            ..HealthThresholds::default()
        });
        for d in 0..warmup_days - 1 {
            m.observe(&day(d as u32, 10, 40, 10, 120), 100);
        }
        let boundary = m.observe(&slow_day(warmup_days as u32 - 1), 100).clone();
        assert!(
            boundary.flags.is_empty(),
            "day warmup-1 must stay silent: {:?}",
            boundary.flags
        );

        let mut m = HealthMonitor::new(HealthThresholds {
            warmup_days,
            ..HealthThresholds::default()
        });
        for d in 0..warmup_days {
            m.observe(&day(d as u32, 10, 40, 10, 120), 100);
        }
        let row = m.observe(&slow_day(warmup_days as u32), 100).clone();
        assert!(
            row.flags.iter().any(|f| f.kind() == "ingest-slowdown"),
            "day == warmup must flag the slowdown: {:?}",
            row.flags
        );
    }

    #[test]
    fn funnel_collapse_and_rejects_flag() {
        let mut m = HealthMonitor::default();
        let zero_stay = m.observe(&day(0, 10, 0, 5, 120), 0).clone();
        let kinds: Vec<_> = zero_stay.flags.iter().map(HealthFlag::kind).collect();
        assert!(kinds.contains(&"zero-stay-day"), "{kinds:?}");
        assert!(kinds.contains(&"zero-sample-day"), "{kinds:?}");

        let empty = m.observe(&IngestReport::default(), 10).clone();
        assert_eq!(empty.flags[0].kind(), "zero-trip-day");

        let rejected = m
            .observe(
                &IngestReport {
                    rejected_waybills: 3,
                    trips: 5,
                    new_stays: 4,
                    ..day(2, 5, 4, 1, 120)
                },
                10,
            )
            .clone();
        assert!(rejected.flags.iter().any(|f| f.kind() == "rejected-input"));
    }

    #[test]
    fn slowdown_uses_rolling_baseline() {
        let mut m = HealthMonitor::default();
        for d in 0..4 {
            m.observe(&day(d, 10, 40, 10, 120), 100); // 1 ms/trip
        }
        let slow = IngestReport {
            extraction_ns: 10 * 5_000_000, // 5 ms/trip > 4× baseline
            ..day(4, 10, 40, 10, 120)
        };
        let row = m.observe(&slow, 100).clone();
        assert!(
            row.flags.iter().any(|f| f.kind() == "ingest-slowdown"),
            "{:?}",
            row.flags
        );
    }

    #[test]
    fn report_json_has_days_and_anomalies() {
        let mut m = HealthMonitor::default();
        m.observe(&day(0, 10, 0, 5, 120), 0);
        let json = m.report().to_json().render();
        assert!(json.contains("\"days\""));
        assert!(json.contains("\"anomalies\""));
        assert!(json.contains("\"zero-stay-day\""));
        assert!(json.contains("\"healthy\":false"));

        m.reset();
        assert!(m.report().days.is_empty());
    }
}
