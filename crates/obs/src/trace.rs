//! Chrome-trace recording: per-thread event rings flushed to a
//! `chrome://tracing` / Perfetto-loadable JSON file.
//!
//! The span collector ([`crate::span`]) answers "how long did stage X take
//! in aggregate"; this module answers "what was every thread doing, when".
//! It records four event kinds — span begin/end pairs, already-measured
//! complete spans, instant markers and counter samples — each stamped with
//! a monotonic timestamp and the recording thread's id.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled is free.** [`trace_span`] / [`trace_instant`] /
//!    [`trace_counter`] cost one relaxed atomic load and allocate nothing
//!    while no sink is installed, so instrumentation can live inside the
//!    pool's per-task dispatch and the engine's per-address loops.
//! 2. **Enabled is lock-minimal.** Each thread appends to its own
//!    mutex-protected ring; that mutex is uncontended except while
//!    [`take_trace`] drains. The only global locks are taken once per
//!    thread (ring registration, epoch read), not per event.
//! 3. **Bounded.** A ring holds at most [`RING_CAPACITY`] events; beyond
//!    that new events are counted as dropped rather than grown or
//!    overwritten, so the retained prefix keeps begin/end pairs balanced.
//!
//! The export format is the Trace Event Format's JSON object form:
//! `{"traceEvents": [...]}` with `ph` ∈ {`B`,`E`,`X`,`i`,`C`,`M`},
//! timestamps in fractional microseconds, one `tid` per recording thread
//! (named after the OS thread, so pool workers show up as
//! `dlinfma-pool-N` tracks). [`validate_chrome_trace`] is the matching
//! shape checker used by tests and `cargo run -p xtask -- trace-check`.

use crate::json::JsonValue;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hard cap on events retained per thread ring. Beyond it new events are
/// dropped (and counted), never silently overwritten — overwriting the
/// oldest events would orphan `End` records whose `Begin` was evicted.
pub const RING_CAPACITY: usize = 1 << 15;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped by [`reset_trace`]; rings registered under an older generation
/// are abandoned by their owning thread on the next event.
static TRACE_GENERATION: AtomicU64 = AtomicU64::new(0);
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
static TRACE_EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

thread_local! {
    static LOCAL: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
}

/// Event kinds, mirroring the Chrome trace-event phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span opened (`ph: "B"`).
    Begin,
    /// Span closed (`ph: "E"`).
    End,
    /// Complete span with a known duration (`ph: "X"`).
    Complete,
    /// Instant marker (`ph: "i"`).
    Instant,
    /// Counter sample (`ph: "C"`).
    Counter,
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Event name; must come from [`crate::names`] or
    /// [`crate::report::stage`] (lint rule L8).
    pub name: &'static str,
    /// Which Chrome phase this event exports as.
    pub phase: TracePhase,
    /// Start offset in nanoseconds since the trace epoch. For
    /// [`TracePhase::Complete`] this is the span's *start* (record time
    /// minus duration).
    pub ts_ns: u64,
    /// Duration in nanoseconds; meaningful for [`TracePhase::Complete`].
    pub dur_ns: u64,
    /// Counter value; meaningful for [`TracePhase::Counter`].
    pub value: f64,
    /// Dense per-process id of the recording thread (same numbering as
    /// [`crate::span::SpanRecord::thread`]).
    pub thread: u64,
}

struct Ring {
    events: Vec<TraceEvent>,
    dropped: u64,
    thread: u64,
    label: String,
}

struct LocalRing {
    ring: Arc<Mutex<Ring>>,
    generation: u64,
    /// Cached copy of the global epoch so per-event timestamps never touch
    /// the epoch mutex.
    epoch: Instant,
}

/// Installs the trace sink: subsequent events are recorded.
pub fn trace_enable() {
    TRACE_ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the trace sink. Spans already begun still record their end
/// event so per-thread begin/end pairs stay balanced.
pub fn trace_disable() {
    TRACE_ENABLED.store(false, Ordering::Relaxed);
}

/// Whether a trace sink is installed. The disabled path of every recording
/// call is this one relaxed load.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

fn register_ring(generation: u64) -> LocalRing {
    let thread = crate::span::current_thread_id();
    let label = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{thread}"));
    let epoch = {
        let mut e = TRACE_EPOCH.lock().expect("trace epoch lock");
        *e.get_or_insert_with(Instant::now)
    };
    let ring = Arc::new(Mutex::new(Ring {
        events: Vec::with_capacity(RING_CAPACITY.min(256)),
        dropped: 0,
        thread,
        label,
    }));
    RINGS
        .lock()
        .expect("trace registry lock")
        .push(Arc::clone(&ring));
    LocalRing {
        ring,
        generation,
        epoch,
    }
}

/// Appends one event to the calling thread's ring, registering the ring on
/// first use (or after a reset). Does not check the enabled flag — guards
/// use this to close spans begun before a `trace_disable`.
fn record_always(name: &'static str, phase: TracePhase, dur_ns: u64, value: f64) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let generation = TRACE_GENERATION.load(Ordering::Relaxed);
        let stale = match slot.as_ref() {
            Some(l) => l.generation != generation,
            None => true,
        };
        if stale {
            *slot = Some(register_ring(generation));
        }
        let local = slot.as_mut().expect("ring installed above");
        let now_ns = Instant::now()
            .saturating_duration_since(local.epoch)
            .as_nanos() as u64;
        let ts_ns = match phase {
            TracePhase::Complete => now_ns.saturating_sub(dur_ns),
            _ => now_ns,
        };
        let mut ring = local.ring.lock().expect("trace ring lock");
        if ring.events.len() >= RING_CAPACITY {
            ring.dropped += 1;
            return;
        }
        let thread = ring.thread;
        ring.events.push(TraceEvent {
            name,
            phase,
            ts_ns,
            dur_ns,
            value,
            thread,
        });
    });
}

#[inline]
fn record(name: &'static str, phase: TracePhase, dur_ns: u64, value: f64) {
    if !trace_enabled() {
        return;
    }
    record_always(name, phase, dur_ns, value);
}

/// Guard returned by [`trace_span`]; records the matching end event on
/// drop (even if tracing was disabled in between, so pairs stay balanced —
/// but not across a [`reset_trace`], which would orphan the end).
#[must_use = "the trace span closes when the guard drops"]
#[derive(Debug)]
pub struct TraceSpanGuard {
    name: Option<&'static str>,
    generation: u64,
}

impl Drop for TraceSpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name else { return };
        if TRACE_GENERATION.load(Ordering::Relaxed) != self.generation {
            return;
        }
        record_always(name, TracePhase::End, 0, 0.0);
    }
}

/// Opens a trace span on the calling thread; the guard emits the end event
/// when dropped. Disabled cost: one relaxed atomic load, no allocation.
#[inline]
pub fn trace_span(name: &'static str) -> TraceSpanGuard {
    if !trace_enabled() {
        return TraceSpanGuard {
            name: None,
            generation: 0,
        };
    }
    record_always(name, TracePhase::Begin, 0, 0.0);
    TraceSpanGuard {
        name: Some(name),
        generation: TRACE_GENERATION.load(Ordering::Relaxed),
    }
}

/// Records a complete span of known duration ending now (exports as one
/// `X` event whose `ts` is the inferred start).
#[inline]
pub fn trace_complete(name: &'static str, dur_ns: u64) {
    record(name, TracePhase::Complete, dur_ns, 0.0);
}

/// Records an instant marker.
#[inline]
pub fn trace_instant(name: &'static str) {
    record(name, TracePhase::Instant, 0, 0.0);
}

/// Records a counter sample; each named counter renders as its own track.
#[inline]
pub fn trace_counter(name: &'static str, value: f64) {
    record(name, TracePhase::Counter, 0, value);
}

/// Everything drained from the per-thread rings by [`take_trace`].
#[derive(Debug, Clone, Default)]
pub struct TraceCapture {
    /// Events from all threads, sorted by timestamp (per-thread relative
    /// order preserved for equal timestamps).
    pub events: Vec<TraceEvent>,
    /// `(thread id, thread name)` for every ring that contributed.
    pub threads: Vec<(u64, String)>,
    /// Events discarded at the [`RING_CAPACITY`] cap.
    pub dropped: u64,
}

/// Drains every thread ring into one sorted capture. Rings stay registered,
/// so recording can continue afterwards; call between logical runs (or once
/// at process exit, as the CLI does for `--trace-out`).
pub fn take_trace() -> TraceCapture {
    let rings: Vec<Arc<Mutex<Ring>>> = RINGS.lock().expect("trace registry lock").clone();
    let mut capture = TraceCapture::default();
    for ring in rings {
        let mut r = ring.lock().expect("trace ring lock");
        capture.dropped += r.dropped;
        r.dropped = 0;
        if !capture.threads.iter().any(|(t, _)| *t == r.thread) {
            capture.threads.push((r.thread, r.label.clone()));
        }
        capture.events.extend(std::mem::take(&mut r.events));
    }
    capture.threads.sort();
    // Stable: events from one ring are already in chronological order, and
    // that relative order must survive for begin/end nesting.
    capture.events.sort_by_key(|e| e.ts_ns);
    capture
}

/// Clears all trace state: deregisters every ring, restarts the epoch, and
/// invalidates open [`TraceSpanGuard`]s (their end events are discarded
/// rather than recorded unmatched). Does not change the enabled flag.
pub fn reset_trace() {
    TRACE_GENERATION.fetch_add(1, Ordering::Relaxed);
    RINGS.lock().expect("trace registry lock").clear();
    *TRACE_EPOCH.lock().expect("trace epoch lock") = None;
}

fn phase_str(p: TracePhase) -> &'static str {
    match p {
        TracePhase::Begin => "B",
        TracePhase::End => "E",
        TracePhase::Complete => "X",
        TracePhase::Instant => "i",
        TracePhase::Counter => "C",
    }
}

/// Converts a capture to the Chrome trace-event JSON object form.
pub fn chrome_trace_json(capture: &TraceCapture) -> JsonValue {
    let mut events: Vec<JsonValue> =
        Vec::with_capacity(capture.events.len() + capture.threads.len());
    for (tid, label) in &capture.threads {
        events.push(JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("thread_name".into())),
            ("ph".into(), JsonValue::Str("M".into())),
            ("pid".into(), JsonValue::Num(1.0)),
            ("tid".into(), JsonValue::Num(*tid as f64)),
            (
                "args".into(),
                JsonValue::Obj(vec![("name".into(), JsonValue::Str(label.clone()))]),
            ),
        ]));
    }
    for e in &capture.events {
        let mut obj = vec![
            ("name".into(), JsonValue::Str(e.name.to_string())),
            ("ph".into(), JsonValue::Str(phase_str(e.phase).into())),
            ("pid".into(), JsonValue::Num(1.0)),
            ("tid".into(), JsonValue::Num(e.thread as f64)),
            // Exact-nanosecond variant: `f64` microseconds would silently
            // round timestamps once a capture crosses 2^53 ns of uptime.
            ("ts".into(), JsonValue::Nanos(e.ts_ns)),
        ];
        match e.phase {
            TracePhase::Complete => {
                obj.push(("dur".into(), JsonValue::Nanos(e.dur_ns)));
            }
            TracePhase::Instant => {
                obj.push(("s".into(), JsonValue::Str("t".into())));
            }
            TracePhase::Counter => {
                obj.push((
                    "args".into(),
                    JsonValue::Obj(vec![("value".into(), JsonValue::Num(e.value))]),
                ));
            }
            _ => {}
        }
        events.push(JsonValue::Obj(obj));
    }
    JsonValue::Obj(vec![
        ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
        (
            "dlinfmaDropped".into(),
            JsonValue::Num(capture.dropped as f64),
        ),
        ("traceEvents".into(), JsonValue::Arr(events)),
    ])
}

/// Renders a capture as a Chrome trace-event JSON document (what
/// `--trace-out` writes).
pub fn chrome_trace(capture: &TraceCapture) -> String {
    chrome_trace_json(capture).render()
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Non-metadata events in the file.
    pub events: usize,
    /// Distinct thread ids seen.
    pub threads: usize,
    /// Distinct event names (excluding metadata).
    pub names: BTreeSet<String>,
    /// Matched begin/end pairs plus complete (`X`) events.
    pub complete_spans: usize,
    /// Dropped-event count the producer recorded.
    pub dropped: u64,
}

fn event_num(obj: &[(String, JsonValue)], key: &str) -> Option<f64> {
    obj.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        })
}

fn event_str<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Option<&'a str> {
    obj.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

/// The golden-shape check for Chrome-trace files: valid JSON of the object
/// form, every event carries `ph`/`tid`/`name`, timestamps are
/// non-negative and non-decreasing per thread, `X` durations are
/// non-negative, and begin/end events match up per thread (unbalanced
/// stacks are only tolerated when the producer reported drops).
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let JsonValue::Obj(root) = &doc else {
        return Err("root must be a JSON object with a traceEvents key".into());
    };
    let dropped = event_num(root, "dlinfmaDropped").unwrap_or(0.0) as u64;
    let Some((_, JsonValue::Arr(events))) = root.iter().find(|(k, _)| k == "traceEvents") else {
        return Err("missing traceEvents array".into());
    };

    let mut summary = TraceSummary {
        events: 0,
        threads: 0,
        names: BTreeSet::new(),
        complete_spans: 0,
        dropped,
    };
    // Per-tid open-span stack of (name, ts) and last timestamp seen.
    let mut stacks: Vec<(u64, Vec<(String, f64)>)> = Vec::new();
    let mut last_ts: Vec<(u64, f64)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let JsonValue::Obj(obj) = ev else {
            return Err(format!("event {i}: not an object"));
        };
        let ph = event_str(obj, "ph").ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = event_str(obj, "name")
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        let tid = event_num(obj, "tid").ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        if ph == "M" {
            continue;
        }
        let ts = event_num(obj, "ts").ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i} ({name}): negative ts {ts}"));
        }
        match last_ts.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, prev)) => {
                if ts < *prev {
                    return Err(format!(
                        "event {i} ({name}): ts {ts} went backwards on tid {tid} (prev {prev})"
                    ));
                }
                *prev = ts;
            }
            None => last_ts.push((tid, ts)),
        }
        summary.events += 1;
        summary.names.insert(name.clone());
        let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => stack.push((name, ts)),
            "E" => {
                let Some((open, begin_ts)) = stack.pop() else {
                    return Err(format!("event {i} ({name}): E without open B on tid {tid}"));
                };
                if open != name {
                    return Err(format!(
                        "event {i}: E `{name}` closes B `{open}` on tid {tid}"
                    ));
                }
                if ts < begin_ts {
                    return Err(format!(
                        "event {i} ({name}): negative duration ({begin_ts}..{ts})"
                    ));
                }
                summary.complete_spans += 1;
            }
            "X" => {
                let dur = event_num(obj, "dur")
                    .ok_or_else(|| format!("event {i} ({name}): X without dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i} ({name}): negative dur {dur}"));
                }
                summary.complete_spans += 1;
            }
            "i" | "C" => {}
            other => return Err(format!("event {i} ({name}): unknown phase `{other}`")),
        }
    }
    if dropped == 0 {
        for (tid, stack) in &stacks {
            if let Some((name, _)) = stack.last() {
                return Err(format!(
                    "tid {tid}: span `{name}` opened but never closed (and no drops reported)"
                ));
            }
        }
    }
    summary.threads = last_ts.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    // Pure-function tests only: anything touching the global rings lives in
    // tests/obs.rs under the cross-test lock.
    use super::*;

    fn capture_of(events: Vec<TraceEvent>) -> TraceCapture {
        let mut threads: Vec<(u64, String)> = Vec::new();
        for e in &events {
            if !threads.iter().any(|(t, _)| *t == e.thread) {
                threads.push((e.thread, format!("thread-{}", e.thread)));
            }
        }
        TraceCapture {
            events,
            threads,
            dropped: 0,
        }
    }

    fn ev(name: &'static str, phase: TracePhase, ts_ns: u64, thread: u64) -> TraceEvent {
        TraceEvent {
            name,
            phase,
            ts_ns,
            dur_ns: 0,
            value: 0.0,
            thread,
        }
    }

    #[test]
    fn export_then_validate_round_trips() {
        let mut c = capture_of(vec![
            ev("a", TracePhase::Begin, 0, 0),
            ev("b", TracePhase::Begin, 100, 1),
            ev("b", TracePhase::End, 250, 1),
            ev("a", TracePhase::End, 300, 0),
            ev("mark", TracePhase::Instant, 400, 0),
        ]);
        c.events.push(TraceEvent {
            name: "x",
            phase: TracePhase::Complete,
            ts_ns: 500,
            dur_ns: 80,
            value: 0.0,
            thread: 1,
        });
        c.events.push(TraceEvent {
            name: "count",
            phase: TracePhase::Counter,
            ts_ns: 600,
            dur_ns: 0,
            value: 7.0,
            thread: 0,
        });
        let text = chrome_trace(&c);
        let summary = validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(summary.events, 7);
        assert_eq!(summary.threads, 2);
        assert_eq!(summary.complete_spans, 3);
        assert!(summary.names.contains("a") && summary.names.contains("count"));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("dlinfma") || text.contains("thread-0"));
    }

    #[test]
    fn export_escapes_hostile_names_and_thread_labels() {
        // Event names come from the registry in production, but the emitter
        // must not rely on that: a name or OS thread label containing
        // quotes, backslashes or control characters has to render as valid
        // JSON and survive a parse round-trip byte-for-byte.
        let hostile: &'static str = "evil\"name\\with\n\u{1}ctl";
        let mut c = capture_of(vec![ev(hostile, TracePhase::Instant, 10, 0)]);
        c.threads[0].1 = "label \"quoted\" \\ back\r\nslash\u{7}".to_string();
        let text = chrome_trace(&c);
        let doc = JsonValue::parse(&text).expect("escaped output parses");
        let events = doc["traceEvents"].as_array().unwrap();
        let meta = &events[0];
        assert_eq!(meta["ph"].as_str(), Some("M"));
        assert_eq!(
            meta["args"]["name"].as_str(),
            Some("label \"quoted\" \\ back\r\nslash\u{7}")
        );
        assert_eq!(events[1]["name"].as_str(), Some(hostile));
        validate_chrome_trace(&text).expect("valid trace");
    }

    #[test]
    fn export_keeps_nanosecond_precision_past_f64_range() {
        // A capture taken after ~104 days of uptime crosses 2^53 ns; `ts`
        // and `dur` must still carry exact nanosecond-resolution decimals.
        let base = (1u64 << 53) + 1; // not representable as f64
        let mut c = capture_of(vec![ev("a", TracePhase::Instant, base, 0)]);
        c.events.push(TraceEvent {
            name: "x",
            phase: TracePhase::Complete,
            ts_ns: base + 2,
            dur_ns: 1_000_001,
            value: 0.0,
            thread: 0,
        });
        let text = chrome_trace(&c);
        assert!(
            text.contains("\"ts\":9007199254740.993"),
            "instant ts lost precision: {text}"
        );
        assert!(
            text.contains("\"ts\":9007199254740.995"),
            "complete ts lost precision: {text}"
        );
        assert!(
            text.contains("\"dur\":1000.001"),
            "dur lost precision: {text}"
        );
        validate_chrome_trace(&text).expect("valid trace");
    }

    #[test]
    fn validator_rejects_unbalanced_and_mismatched_spans() {
        let open = capture_of(vec![ev("a", TracePhase::Begin, 0, 0)]);
        let err = validate_chrome_trace(&chrome_trace(&open)).unwrap_err();
        assert!(err.contains("never closed"), "{err}");

        let mut tolerated = open.clone();
        tolerated.dropped = 3;
        assert!(validate_chrome_trace(&chrome_trace(&tolerated)).is_ok());

        let crossed = capture_of(vec![
            ev("a", TracePhase::Begin, 0, 0),
            ev("b", TracePhase::End, 10, 0),
        ]);
        let err = validate_chrome_trace(&chrome_trace(&crossed)).unwrap_err();
        assert!(err.contains("closes"), "{err}");

        let stray = capture_of(vec![ev("a", TracePhase::End, 0, 0)]);
        let err = validate_chrome_trace(&chrome_trace(&stray)).unwrap_err();
        assert!(err.contains("without open B"), "{err}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let err = validate_chrome_trace(r#"{"traceEvents":[{"ph":"B","tid":0}]}"#).unwrap_err();
        assert!(err.contains("missing name"), "{err}");
        let err =
            validate_chrome_trace(r#"{"traceEvents":[{"name":"a","ph":"Z","tid":0,"ts":1}]}"#)
                .unwrap_err();
        assert!(err.contains("unknown phase"), "{err}");
    }

    #[test]
    fn validator_rejects_backwards_time_per_thread() {
        // Out-of-order on one tid is an error even though another tid
        // interleaves freely.
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"i","tid":0,"ts":100,"s":"t"},
            {"name":"b","ph":"i","tid":1,"ts":5,"s":"t"},
            {"name":"c","ph":"i","tid":0,"ts":50,"s":"t"}
        ]}"#;
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn complete_events_carry_start_and_duration_in_microseconds() {
        let c = capture_of(vec![TraceEvent {
            name: "x",
            phase: TracePhase::Complete,
            ts_ns: 1_500,
            dur_ns: 3_000,
            value: 0.0,
            thread: 0,
        }]);
        let text = chrome_trace(&c);
        assert!(
            text.contains("\"ph\": \"X\"") || text.contains("\"ph\":\"X\""),
            "{text}"
        );
        let summary = validate_chrome_trace(&text).expect("valid");
        assert_eq!(summary.complete_spans, 1);
    }
}
