//! Structured spans: hierarchical wall-clock timing with a thread-safe
//! global collector.
//!
//! A span measures one region of code. Spans nest through a per-thread
//! stack, so a span opened while another is live on the same thread records
//! that span as its parent — the exporters can then render the call tree.
//!
//! The collector is **disabled by default**. While disabled, [`span`] costs
//! one relaxed atomic load and records nothing, which keeps instrumented hot
//! paths within noise of their un-instrumented baseline. Enable it with
//! [`enable`] before the code under observation runs.
//!
//! Timing uses [`Instant`] (monotonic); start offsets are reported relative
//! to the first event after process start or the latest [`reset_spans`].

use crate::json::JsonValue;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on retained spans; beyond it new spans are counted but dropped,
/// so a runaway loop cannot exhaust memory.
pub const MAX_SPANS: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Bumped by [`reset_spans`]; guards from before a reset must not write
/// into records allocated after it.
static GENERATION: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

thread_local! {
    /// Indices (into the global span vec) of the spans currently open on
    /// this thread, innermost last.
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Dense per-process id of the calling thread, shared with the trace rings
/// so span records and trace events agree on thread numbering.
pub(crate) fn current_thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static so that a disabled call allocates nothing).
    pub name: &'static str,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: usize,
    /// Index of the parent span in the recorded list, if any.
    pub parent: Option<usize>,
    /// Start offset in nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Measured duration in nanoseconds (0 while the span is still open).
    pub duration_ns: u64,
    /// Dense per-process id of the recording thread.
    pub thread: u64,
}

/// Enables the global collector.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables the global collector. Spans already open finish recording.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the collector is currently enabled. Instrumentation sites use
/// this to gate work that would otherwise allocate or lock.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_since_epoch(now: Instant) -> u64 {
    let mut epoch = EPOCH.lock().expect("span epoch lock");
    let e = *epoch.get_or_insert(now);
    now.saturating_duration_since(e).as_nanos() as u64
}

/// Opens a span; the returned guard records the duration when dropped.
///
/// While the collector is disabled this is a no-op costing one atomic load
/// (two when the trace sink is also checked — see [`crate::trace`]). When a
/// trace sink is installed the span additionally emits begin/end trace
/// events, so stage spans appear in `--trace-out` files for free.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    let trace = crate::trace::trace_span(name);
    if !enabled() {
        return SpanGuard {
            idx: None,
            start: None,
            generation: 0,
            _trace: trace,
        };
    }
    let start = Instant::now();
    let start_ns = now_since_epoch(start);
    let generation = GENERATION.load(Ordering::Relaxed);
    let (parent, depth) = STACK.with(|s| {
        let s = s.borrow();
        (s.last().copied(), s.len())
    });
    let thread = THREAD_ID.with(|t| *t);
    let idx = {
        let mut spans = SPANS.lock().expect("span collector lock");
        if spans.len() >= MAX_SPANS {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            None
        } else {
            spans.push(SpanRecord {
                name,
                depth,
                parent,
                start_ns,
                duration_ns: 0,
                thread,
            });
            Some(spans.len() - 1)
        }
    };
    if let Some(idx) = idx {
        STACK.with(|s| s.borrow_mut().push(idx));
    }
    SpanGuard {
        idx,
        start: Some(start),
        generation,
        _trace: trace,
    }
}

/// Records an already-measured duration as a completed span under the
/// current span stack. Used where a stage's time is accumulated across many
/// small pieces (e.g. per-trip noise filtering) rather than one contiguous
/// region.
pub fn record_duration(name: &'static str, duration_ns: u64) {
    crate::trace::trace_complete(name, duration_ns);
    if !enabled() {
        return;
    }
    let now = Instant::now();
    let end_ns = now_since_epoch(now);
    let (parent, depth) = STACK.with(|s| {
        let s = s.borrow();
        (s.last().copied(), s.len())
    });
    let thread = THREAD_ID.with(|t| *t);
    let mut spans = SPANS.lock().expect("span collector lock");
    if spans.len() >= MAX_SPANS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    spans.push(SpanRecord {
        name,
        depth,
        parent,
        start_ns: end_ns.saturating_sub(duration_ns),
        duration_ns: duration_ns.max(1),
        thread,
    });
}

/// Runs `f` under a span named `name`.
pub fn scoped<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _guard = span(name);
    f()
}

/// A monotonic stopwatch: the one sanctioned way to measure wall-clock time
/// outside this crate (the `xtask lint` L4 rule rejects ad-hoc
/// `Instant::now()` elsewhere). Unlike [`span`], a `Stopwatch` is always on
/// — it exists for code that feeds durations into typed reports
/// ([`crate::report::PipelineReport`] stages) rather than the span collector.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Time since [`Stopwatch::start`] in whole nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// Guard returned by [`span`]; finishes the record on drop.
#[derive(Debug)]
pub struct SpanGuard {
    idx: Option<usize>,
    start: Option<Instant>,
    generation: u64,
    /// Emits the matching trace end event when the guard drops.
    _trace: crate::trace::TraceSpanGuard,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        // A reset between open and close invalidates the index.
        if GENERATION.load(Ordering::Relaxed) != self.generation {
            return;
        }
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            if st.last() == Some(&idx) {
                st.pop();
            } else {
                st.retain(|&i| i != idx);
            }
        });
        let elapsed = self
            .start
            .expect("open span has a start")
            .elapsed()
            .as_nanos() as u64;
        let mut spans = SPANS.lock().expect("span collector lock");
        if let Some(r) = spans.get_mut(idx) {
            r.duration_ns = elapsed.max(1);
        }
    }
}

/// A copy of every recorded span, in recording order.
pub fn spans_snapshot() -> Vec<SpanRecord> {
    SPANS.lock().expect("span collector lock").clone()
}

/// Drains and returns every recorded span.
pub fn take_spans() -> Vec<SpanRecord> {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    let mut spans = SPANS.lock().expect("span collector lock");
    std::mem::take(&mut *spans)
}

/// Clears all recorded spans and restarts the epoch.
pub fn reset_spans() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    SPANS.lock().expect("span collector lock").clear();
    *EPOCH.lock().expect("span epoch lock") = None;
    DROPPED.store(0, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().clear());
}

/// Number of spans dropped because the [`MAX_SPANS`] cap was hit.
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Renders spans as an indented tree table (one line per span).
pub fn render_spans(spans: &[SpanRecord]) -> String {
    let mut out = String::from("== spans ==\n");
    if spans.is_empty() {
        out.push_str("(none recorded — is the collector enabled?)\n");
        return out;
    }
    out.push_str(&format!(
        "{:<44} {:>12} {:>14}\n",
        "span", "start (ms)", "duration (ms)"
    ));
    for s in spans {
        let name = format!("{}{}", "  ".repeat(s.depth), s.name);
        out.push_str(&format!(
            "{:<44} {:>12.3} {:>14.3}\n",
            name,
            s.start_ns as f64 / 1e6,
            s.duration_ns as f64 / 1e6
        ));
    }
    let dropped = dropped_spans();
    if dropped > 0 {
        out.push_str(&format!(
            "({dropped} spans dropped at the {MAX_SPANS} cap)\n"
        ));
    }
    out
}

/// Converts spans to a JSON array of objects.
pub fn spans_to_json(spans: &[SpanRecord]) -> JsonValue {
    JsonValue::Arr(
        spans
            .iter()
            .map(|s| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(s.name.to_string())),
                    ("depth".into(), JsonValue::Num(s.depth as f64)),
                    (
                        "parent".into(),
                        match s.parent {
                            Some(p) => JsonValue::Num(p as f64),
                            None => JsonValue::Null,
                        },
                    ),
                    ("start_ns".into(), JsonValue::Num(s.start_ns as f64)),
                    ("duration_ns".into(), JsonValue::Num(s.duration_ns as f64)),
                    ("thread".into(), JsonValue::Num(s.thread as f64)),
                ])
            })
            .collect(),
    )
}
