//! Named metrics: counters, gauges and fixed-bucket histograms.
//!
//! Handles returned by [`counter`] / [`gauge`] / [`histogram`] are cheap
//! `Arc`-backed clones; after the one registry lookup, updates are lock-free
//! atomic operations, safe to call concurrently from worker threads.
//!
//! Conventions: names are `area/metric` (e.g. `retrieval/candidate-set-size`);
//! histograms use *upper-inclusive* buckets — observation `v` lands in the
//! first bucket whose bound satisfies `v <= bound`, with one overflow bucket
//! past the last bound.

use crate::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramInner>>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().expect("metrics registry lock");
    f(guard.get_or_insert_with(Registry::default))
}

/// A monotonically-increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (stores an `f64`).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Ascending upper bounds; observations land in the first bucket with
    /// `v <= bound`. One extra overflow bucket follows the last bound.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations as `f64` bits, updated by compare-exchange.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Error constructing a histogram: a bucket bound was NaN or infinite.
/// Non-finite bounds cannot be ordered into buckets, so they are rejected
/// up front rather than panicking inside the sort.
#[derive(Debug, Clone, PartialEq)]
pub struct NonFiniteBound {
    /// The offending bound value.
    pub value: f64,
    /// Its index in the caller-supplied bounds slice.
    pub index: usize,
}

impl std::fmt::Display for NonFiniteBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "histogram bound #{} is {}; bucket bounds must be finite",
            self.index, self.value
        )
    }
}

impl std::error::Error for NonFiniteBound {}

impl HistogramInner {
    fn new(bounds: &[f64]) -> Result<Self, NonFiniteBound> {
        if let Some((index, &value)) = bounds.iter().enumerate().find(|(_, b)| !b.is_finite()) {
            return Err(NonFiniteBound { value, index });
        }
        let mut bounds: Vec<f64> = bounds.to_vec();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let n = bounds.len() + 1;
        Ok(Self {
            bounds,
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        })
    }

    fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        fma_f64_atomic(&self.sum_bits, |s| s + v);
        fma_f64_atomic(&self.min_bits, |m| m.min(v));
        fma_f64_atomic(&self.max_bits, |m| m.max(v));
    }
}

/// Compare-exchange update of an `f64` stored as bits.
fn fma_f64_atomic(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation. Non-finite values are ignored.
    pub fn observe(&self, v: f64) {
        self.0.observe(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    /// The ascending upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Gets or creates the counter named `name`.
pub fn counter(name: &str) -> Counter {
    Counter(with_registry(|r| {
        Arc::clone(
            r.counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }))
}

/// Gets or creates the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    Gauge(with_registry(|r| {
        Arc::clone(
            r.gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
        )
    }))
}

/// Gets or creates the histogram named `name` with the given upper bounds,
/// rejecting NaN/infinite bounds with a typed error. If the histogram
/// already exists its original bounds are kept.
pub fn try_histogram(name: &str, bounds: &[f64]) -> Result<Histogram, NonFiniteBound> {
    // Validate outside the registry lock so an error never poisons it.
    let validated = HistogramInner::new(bounds)?;
    Ok(Histogram(with_registry(|r| {
        Arc::clone(
            r.histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(validated)),
        )
    })))
}

/// Infallible [`try_histogram`]: non-finite bounds are dropped (with the
/// rest kept) instead of erroring, which preserves the original lenient
/// behaviour for callers with hard-coded bounds.
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    let finite: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
    try_histogram(name, &finite).expect("all bounds are finite after filtering")
}

/// Clears the whole registry.
pub fn reset_metrics() {
    *REGISTRY.lock().expect("metrics registry lock") = None;
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Ascending upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; last entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation (`None` when empty).
    pub min: Option<f64>,
    /// Maximum observation (`None` when empty).
    pub max: Option<f64>,
}

/// Point-in-time copy of the whole registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Converts the snapshot to a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "counters".into(),
                JsonValue::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), JsonValue::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                JsonValue::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), JsonValue::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                JsonValue::Obj(
                    self.histograms
                        .iter()
                        .map(|h| {
                            (
                                h.name.clone(),
                                JsonValue::Obj(vec![
                                    (
                                        "bounds".into(),
                                        JsonValue::Arr(
                                            h.bounds.iter().map(|&b| JsonValue::Num(b)).collect(),
                                        ),
                                    ),
                                    (
                                        "counts".into(),
                                        JsonValue::Arr(
                                            h.counts
                                                .iter()
                                                .map(|&c| JsonValue::Num(c as f64))
                                                .collect(),
                                        ),
                                    ),
                                    ("count".into(), JsonValue::Num(h.count as f64)),
                                    ("sum".into(), JsonValue::Num(h.sum)),
                                    ("min".into(), h.min.map_or(JsonValue::Null, JsonValue::Num)),
                                    ("max".into(), h.max.map_or(JsonValue::Null, JsonValue::Num)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Snapshots the registry.
pub fn metrics_snapshot() -> MetricsSnapshot {
    with_registry(|r| MetricsSnapshot {
        counters: r
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed)))
            .collect(),
        gauges: r
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(n, h)| {
                let count = h.count.load(Ordering::Relaxed);
                HistogramSnapshot {
                    name: n.clone(),
                    bounds: h.bounds.clone(),
                    counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                    count,
                    sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                    min: (count > 0).then(|| f64::from_bits(h.min_bits.load(Ordering::Relaxed))),
                    max: (count > 0).then(|| f64::from_bits(h.max_bits.load(Ordering::Relaxed))),
                }
            })
            .collect(),
    })
}

/// Renders a snapshot as a human-readable table.
pub fn render_metrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("== metrics ==\n");
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        out.push_str("(registry empty)\n");
        return out;
    }
    for (n, v) in &snap.counters {
        out.push_str(&format!("{n:<44} {v:>14}\n"));
    }
    for (n, v) in &snap.gauges {
        out.push_str(&format!("{n:<44} {v:>14.3}\n"));
    }
    for h in &snap.histograms {
        let mean = if h.count > 0 {
            h.sum / h.count as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<44} n={} mean={:.2} min={:.2} max={:.2}\n",
            h.name,
            h.count,
            mean,
            h.min.unwrap_or(0.0),
            h.max.unwrap_or(0.0)
        ));
        for (i, &c) in h.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let label = if i < h.bounds.len() {
                format!("<= {}", h.bounds[i])
            } else {
                format!("> {}", h.bounds.last().copied().unwrap_or(0.0))
            };
            out.push_str(&format!("  {label:<42} {c:>14}\n"));
        }
    }
    out
}
