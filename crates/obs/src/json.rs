//! A minimal JSON value, writer and parser.
//!
//! The obs crate must stay dependency-free (offline registry), so exporters
//! build a [`JsonValue`] tree and render it themselves instead of pulling in
//! serde. Output is standard JSON: strings are escaped, non-finite numbers
//! serialise as `null`, and integral floats print without a fraction so the
//! files diff cleanly. [`JsonValue::parse`] is the matching recursive-descent
//! reader used by the CLI and the integration tests.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// An integer nanosecond quantity rendered as *exact* decimal
    /// microseconds (`1500` → `1.500`). Chrome's trace format wants `ts` /
    /// `dur` in microseconds, but routing a `u64` nanosecond clock through
    /// [`JsonValue::Num`]'s `f64` silently rounds once a capture crosses
    /// 2^53 ns (~104 days of uptime); this variant formats digits from the
    /// integer instead, so no width is ever lost.
    Nanos(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Nanos(ns) => write_nanos_as_micros(out, *ns),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// Accepts exactly the grammar of RFC 8259 (objects, arrays, strings
    /// with escapes incl. `\uXXXX` surrogate pairs, numbers, booleans,
    /// `null`); trailing garbage after the top-level value is an error.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Member lookup: `Some(&value)` if `self` is an object with key `key`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup: `Some(&value)` if `self` is an array with index `idx`.
    pub fn get_idx(&self, idx: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// The elements if `self` is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields if `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The number if `self` is numeric. For [`JsonValue::Nanos`] this is
    /// the microsecond value the variant renders as, rounded to the nearest
    /// representable `f64` — fine for arithmetic, lossy past 2^53.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            JsonValue::Nanos(ns) => Some(*ns as f64 / 1_000.0),
            _ => None,
        }
    }

    /// The string contents if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if `self` is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, JsonValue::Obj(_))
    }

    /// True if `self` is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, JsonValue::Arr(_))
    }

    /// True if `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Static `null` used by the panicking `Index` impls for absent members, so
/// chained lookups (`v["a"]["b"]`) degrade to `Null` instead of panicking on
/// the first missing key.
static NULL: JsonValue = JsonValue::Null;

impl std::ops::Index<&str> for JsonValue {
    type Output = JsonValue;

    fn index(&self, key: &str) -> &JsonValue {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for JsonValue {
    type Output = JsonValue;

    fn index(&self, idx: usize) -> &JsonValue {
        self.get_idx(idx).unwrap_or(&NULL)
    }
}

/// Error from [`JsonValue::parse`]: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the syntax error.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.eat("null", JsonValue::Null),
            Some(b't') => self.eat("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // opening '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + lo.checked_sub(0xDC00)
                                            .ok_or_else(|| self.err("invalid low surrogate"))?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves pos one past the last hex digit and
                            // the outer loop advance below expects pos on the
                            // last consumed byte, so step back one.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is safe
                    // to do bytewise by finding the char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    // lint: allow(L5, fract() is exactly 0.0 for integral doubles; integer-format check)
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

/// Formats integer nanoseconds as exact decimal microseconds, entirely in
/// integer arithmetic: `1500` → `1.5`, `1501` → `1.501`, `2_000` → `2`.
/// A sub-microsecond remainder keeps its (trimmed) three digits so the
/// round-trip `µs * 1000` reproduces the original nanosecond count.
fn write_nanos_as_micros(out: &mut String, ns: u64) {
    let micros = ns / 1_000;
    let rem = ns % 1_000;
    if rem == 0 {
        out.push_str(&format!("{micros}"));
    } else {
        let frac = format!("{rem:03}");
        out.push_str(&format!("{micros}.{}", frac.trim_end_matches('0')));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_render_exact_microseconds() {
        assert_eq!(JsonValue::Nanos(0).render(), "0");
        assert_eq!(JsonValue::Nanos(1_500).render(), "1.5");
        assert_eq!(JsonValue::Nanos(1_501).render(), "1.501");
        assert_eq!(JsonValue::Nanos(2_000).render(), "2");
        assert_eq!(JsonValue::Nanos(7).render(), "0.007");
        assert_eq!(JsonValue::Nanos(950).render(), "0.95");
    }

    #[test]
    fn nanos_survive_beyond_f64_integer_range() {
        // 2^53 + 1 ns is the first count an f64 nanosecond clock cannot
        // hold; the integer formatter must keep every digit.
        let ns = (1u64 << 53) + 1;
        assert_eq!(JsonValue::Nanos(ns).render(), "9007199254740.993");
        // The old `ns as f64 / 1000.0` path rounds the same value away.
        let lossy = format!("{}", ns as f64 / 1_000.0);
        assert_ne!(lossy, "9007199254740.993");
        // Largest possible capture timestamp stays exact too.
        assert_eq!(JsonValue::Nanos(u64::MAX).render(), "18446744073709551.615");
    }

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Num(3.0).render(), "3");
        assert_eq!(JsonValue::Num(3.5).render(), "3.5");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn parses_scalars_and_numbers() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(JsonValue::parse("-3.5e2").unwrap(), JsonValue::Num(-350.0));
    }

    #[test]
    fn parses_strings_with_escapes() {
        let v = JsonValue::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
        // Surrogate pair for U+1F600.
        let v = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
    }

    #[test]
    fn parses_nested_structures_and_roundtrips() {
        let src = r#"{"addresses":[{"id":1,"lat":39.9},{"id":2,"lat":40.1}],"ok":true,"n":null}"#;
        let v = JsonValue::parse(src).unwrap();
        assert!(v.is_object());
        assert_eq!(v["addresses"].as_array().unwrap().len(), 2);
        assert_eq!(v["addresses"][1]["lat"].as_f64().unwrap(), 40.1);
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert!(v["n"].is_null());
        assert!(v["missing"].is_null());
        // Render → parse is the identity on this tree.
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{a:1}",
            "[1,]",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = JsonValue::parse("[1, oops]").unwrap_err();
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::Obj(vec![
            ("xs".into(), JsonValue::Arr(vec![JsonValue::Num(1.0)])),
            ("empty".into(), JsonValue::Obj(vec![])),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1],"empty":{}}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\"xs\": [\n"));
        assert!(pretty.ends_with("}\n"));
    }
}
