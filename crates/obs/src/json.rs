//! A minimal JSON value and writer.
//!
//! The obs crate must stay dependency-free (offline registry), so exporters
//! build a [`JsonValue`] tree and render it themselves instead of pulling in
//! serde. Output is standard JSON: strings are escaped, non-finite numbers
//! serialise as `null`, and integral floats print without a fraction so the
//! files diff cleanly.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Num(3.0).render(), "3");
        assert_eq!(JsonValue::Num(3.5).render(), "3.5");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::Obj(vec![
            ("xs".into(), JsonValue::Arr(vec![JsonValue::Num(1.0)])),
            ("empty".into(), JsonValue::Obj(vec![])),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1],"empty":{}}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\"xs\": [\n"));
        assert!(pretty.ends_with("}\n"));
    }
}
