#![warn(missing_docs)]
//! In-tree observability for the DLInfMA workspace.
//!
//! The deployed system the paper describes (Section V-F) lives or dies on
//! per-stage telemetry: stage latencies locate hot spots, funnel counts
//! (raw points → filtered points → stay points → clusters → candidates →
//! labelled samples) detect silent data drift before accuracy regresses.
//! This crate provides that layer with **zero external dependencies** —
//! everything is hand-rolled on `std::sync` so it builds against an offline
//! registry and adds nothing to compile times:
//!
//! * [`span`] — structured spans with monotonic wall-clock timing,
//!   hierarchical nesting via a per-thread stack, and a thread-safe global
//!   collector. Disabled by default: a disabled [`span::span`] call is one
//!   relaxed atomic load.
//! * [`metrics`] — named counters, gauges and fixed-bucket histograms with
//!   lock-free handles, plus JSON and human-readable table export.
//! * [`report`] — the typed [`PipelineReport`] that `DlInfMa::prepare` /
//!   `train` emit (per-stage durations and funnel counts, with invariant
//!   checking) and the per-ingest [`IngestReport`] the incremental engine
//!   emits for every streamed batch.
//! * [`trace`] — per-thread event rings exported as Chrome trace-event
//!   JSON (`chrome://tracing` / Perfetto), recording span begin/end,
//!   instants and counter tracks. Also disabled by default; installed by
//!   the CLI's `--trace-out`.
//! * [`health`] — ingest health monitors: per-day funnel deltas with
//!   threshold-based anomaly flags, rendered by `dlinfma health`.
//! * [`names`] — the central registry of span/event/counter names
//!   (lint rule L8 rejects ad-hoc literals at instrumentation sites).
//! * [`json`] — a minimal JSON value, writer and parser (no serde) used by
//!   every exporter and by the CLI's readers.
//!
//! The collector is process-global and opt-in: call [`enable`] (the CLI does
//! this under `--verbose` / `--metrics-out`), run the pipeline, then
//! [`export_json`] or the render helpers.

pub mod health;
pub mod json;
pub mod metrics;
pub mod names;
pub mod report;
pub mod span;
pub mod trace;

pub use health::{DayHealth, HealthFlag, HealthMonitor, HealthReport, HealthThresholds};
pub use json::{JsonParseError, JsonValue};
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, render_metrics, reset_metrics, try_histogram,
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, NonFiniteBound,
};
pub use report::{
    stage, EpochProgress, FleetIngestReport, FunnelCounts, IngestReport, PipelineReport,
    PoolReport, PoolWorkerReport, StageReport,
};
pub use span::{
    disable, enable, enabled, record_duration, render_spans, reset_spans, span, spans_snapshot,
    take_spans, SpanGuard, SpanRecord, Stopwatch,
};
pub use trace::{
    chrome_trace, chrome_trace_json, reset_trace, take_trace, trace_complete, trace_counter,
    trace_disable, trace_enable, trace_enabled, trace_instant, trace_span, validate_chrome_trace,
    TraceCapture, TraceEvent, TracePhase, TraceSpanGuard, TraceSummary, RING_CAPACITY,
};

/// One JSON document with everything the collector knows: recorded spans,
/// the metrics registry, and (when available) a pipeline report.
///
/// This is what the CLI writes under `--metrics-out FILE`.
pub fn export_json(report: Option<&PipelineReport>) -> JsonValue {
    let mut obj = vec![
        ("spans".to_string(), span::spans_to_json(&spans_snapshot())),
        ("metrics".to_string(), metrics_snapshot().to_json()),
    ];
    if let Some(r) = report {
        obj.push(("report".to_string(), r.to_json()));
    }
    JsonValue::Obj(obj)
}

/// Resets every global collector: spans, metrics, the trace rings, and
/// both enabled flags. Intended for tests and long-lived processes between
/// runs — two back-to-back pipeline runs separated by a `reset_all` must
/// not leak events or double-count metrics into each other.
pub fn reset_all() {
    disable();
    trace_disable();
    reset_spans();
    reset_metrics();
    reset_trace();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_json_has_spans_and_metrics_keys() {
        let v = export_json(None);
        let s = v.render();
        assert!(s.contains("\"spans\""));
        assert!(s.contains("\"metrics\""));
        assert!(!s.contains("\"report\""));

        let r = PipelineReport::new();
        let s = export_json(Some(&r)).render();
        assert!(s.contains("\"report\""));
    }
}
