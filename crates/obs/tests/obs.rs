//! Integration tests for the obs crate.
//!
//! The span collector and metrics registry are process-global, so tests
//! that touch them serialise on one mutex.

use dlinfma_obs as obs;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset_all();
    guard
}

#[test]
fn disabled_collector_records_nothing() {
    let _g = lock();
    {
        let _outer = obs::span("outer");
        let _inner = obs::span("inner");
        obs::record_duration("accumulated", 1234);
    }
    assert!(obs::spans_snapshot().is_empty());
}

#[test]
fn disabled_span_overhead_is_negligible() {
    let _g = lock();
    let n = 1_000_000u32;
    let start = std::time::Instant::now();
    for _ in 0..n {
        let _s = obs::span("disabled-hot-path");
    }
    let per_call = start.elapsed().as_nanos() as f64 / f64::from(n);
    assert!(obs::spans_snapshot().is_empty());
    // The disabled path is one relaxed atomic load (single-digit ns); the
    // bound is 100x that so scheduler noise can never trip it, while still
    // catching an accidental lock or allocation on the disabled path.
    assert!(
        per_call < 1_000.0,
        "disabled span cost {per_call:.1} ns/call"
    );
}

#[test]
fn spans_nest_and_record_parents() {
    let _g = lock();
    obs::enable();
    {
        let _outer = obs::span("outer");
        {
            let _inner = obs::span("inner");
        }
        obs::record_duration("accumulated", 1_000);
    }
    obs::disable();

    let spans = obs::spans_snapshot();
    assert_eq!(spans.len(), 3);
    let outer = &spans[0];
    assert_eq!(outer.name, "outer");
    assert_eq!(outer.depth, 0);
    assert_eq!(outer.parent, None);
    assert!(outer.duration_ns > 0, "closed span has a duration");

    for s in &spans[1..] {
        assert_eq!(s.depth, 1);
        assert_eq!(s.parent, Some(0));
    }
    let acc = spans.iter().find(|s| s.name == "accumulated").unwrap();
    assert_eq!(acc.duration_ns, 1_000);

    // Inner closed before outer, so its duration fits inside.
    let inner = spans.iter().find(|s| s.name == "inner").unwrap();
    assert!(inner.duration_ns <= outer.duration_ns);
}

#[test]
fn take_spans_drains_and_survives_live_guards() {
    let _g = lock();
    obs::enable();
    let guard = obs::span("straddles-reset");
    let drained = obs::take_spans();
    assert_eq!(drained.len(), 1);
    // Dropping a guard from before the drain must not corrupt new records.
    let _fresh = obs::span("fresh");
    drop(guard);
    obs::disable();
    let spans = obs::spans_snapshot();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].name, "fresh");
}

#[test]
fn histogram_bucket_boundaries_are_upper_inclusive() {
    let _g = lock();
    let h = obs::histogram("test/bounds", &[1.0, 5.0, 10.0]);
    for v in [0.0, 1.0, 1.0001, 5.0, 9.9, 10.0, 10.1, 1e9] {
        h.observe(v);
    }
    h.observe(f64::NAN); // ignored
                         // <=1: {0.0, 1.0}; <=5: {1.0001, 5.0}; <=10: {9.9, 10.0}; overflow: {10.1, 1e9}
    assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
    assert_eq!(h.count(), 8);
    assert_eq!(h.bounds(), &[1.0, 5.0, 10.0]);

    let snap = obs::metrics_snapshot();
    let hs = &snap.histograms[0];
    assert_eq!(hs.min, Some(0.0));
    assert_eq!(hs.max, Some(1e9));
}

#[test]
fn non_finite_histogram_bounds_are_a_typed_error() {
    let _g = lock();
    let err = obs::try_histogram("test/bad-bounds", &[1.0, f64::NAN, 3.0]).unwrap_err();
    assert_eq!(err.index, 1);
    assert!(err.value.is_nan());
    assert!(err.to_string().contains("bound #1"));

    let err = obs::try_histogram("test/bad-bounds", &[f64::INFINITY]).unwrap_err();
    assert_eq!((err.index, err.value), (0, f64::INFINITY));

    // Nothing was registered by the failed attempts, and the lenient entry
    // point still works by dropping the bad bound.
    let h = obs::histogram("test/bad-bounds", &[2.0, f64::NAN, 1.0]);
    assert_eq!(h.bounds(), &[1.0, 2.0]);

    // A clean construction through the fallible path succeeds.
    assert!(obs::try_histogram("test/good-bounds", &[1.0, 2.0]).is_ok());
}

#[test]
fn concurrent_counter_increments_from_threads() {
    let _g = lock();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                let c = obs::counter("test/concurrent");
                let h = obs::histogram("test/concurrent-h", &[0.5]);
                for i in 0..PER_THREAD {
                    c.inc();
                    h.observe((i % 2) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        obs::counter("test/concurrent").get(),
        (THREADS as u64) * PER_THREAD
    );
    let h = obs::histogram("test/concurrent-h", &[0.5]);
    assert_eq!(h.count(), (THREADS as u64) * PER_THREAD);
    assert_eq!(h.sum(), (THREADS as u64 * PER_THREAD) as f64 / 2.0);
    let per_bucket = (THREADS as u64) * PER_THREAD / 2;
    assert_eq!(h.bucket_counts(), vec![per_bucket, per_bucket]);
}

#[test]
fn export_json_is_structurally_valid() {
    let _g = lock();
    obs::enable();
    {
        let _s = obs::span("only");
    }
    obs::counter("test/c").add(3);
    obs::gauge("test/g").set(2.5);
    obs::disable();

    let mut report = obs::PipelineReport::new();
    report.push_stage(obs::stage::CLUSTERING, 42, Some(7), Some(3));
    report.funnel.raw_points = 7;

    let json = obs::export_json(Some(&report)).render();
    for needle in [
        "\"spans\"",
        "\"metrics\"",
        "\"report\"",
        "\"only\"",
        "\"test/c\":3",
        "\"test/g\":2.5",
        "\"clustering\"",
        "\"raw_points\":7",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
    // Balanced braces/brackets as a cheap structural check; the full
    // serde_json round-trip lives in the CLI tests.
    let opens = json.matches('{').count() + json.matches('[').count();
    let closes = json.matches('}').count() + json.matches(']').count();
    assert_eq!(opens, closes);
}

#[test]
fn trace_capture_round_trips_through_chrome_export() {
    let _g = lock();
    obs::trace_enable();
    {
        let _outer = obs::trace_span("outer");
        {
            let _inner = obs::trace_span("inner");
        }
        obs::trace_instant("blip");
        obs::trace_counter("gauge", 7.0);
    }
    obs::record_duration("accumulated", 1_500);
    obs::trace_disable();

    let capture = obs::take_trace();
    assert_eq!(capture.dropped, 0);
    assert!(!capture.threads.is_empty(), "recording thread registered");
    let begins = capture
        .events
        .iter()
        .filter(|e| e.phase == obs::TracePhase::Begin)
        .count();
    let ends = capture
        .events
        .iter()
        .filter(|e| e.phase == obs::TracePhase::End)
        .count();
    assert_eq!(begins, 2);
    assert_eq!(begins, ends);

    let text = obs::chrome_trace_json(&capture).render();
    let summary = obs::validate_chrome_trace(&text).expect("export validates");
    for name in ["outer", "inner", "blip", "gauge", "accumulated"] {
        assert!(summary.names.contains(name), "missing {name}");
    }
    assert_eq!(summary.dropped, 0);

    // The rings were drained: a second take sees nothing.
    assert!(obs::take_trace().events.is_empty());
}

#[test]
fn spans_emit_trace_events_when_tracing_is_on() {
    let _g = lock();
    obs::enable();
    obs::trace_enable();
    {
        let _s = obs::span("shared-name");
    }
    obs::disable();
    obs::trace_disable();
    // One obs span -> one span record AND one matched B/E trace pair with
    // the same name, so the two sinks never disagree on naming.
    assert_eq!(obs::spans_snapshot().len(), 1);
    let capture = obs::take_trace();
    let names: Vec<_> = capture.events.iter().map(|e| e.name).collect();
    assert_eq!(names, ["shared-name", "shared-name"]);
}

#[test]
fn reset_all_clears_trace_state_between_runs() {
    let _g = lock();
    // Run 1 records and is then reset without being taken.
    obs::trace_enable();
    {
        let _s = obs::trace_span("run-1");
    }
    obs::reset_all();
    assert!(!obs::trace_enabled(), "reset_all turns tracing off");
    // Run 2 must see only its own events — no leak from run 1.
    obs::trace_enable();
    {
        let _s = obs::trace_span("run-2");
    }
    obs::trace_disable();
    let capture = obs::take_trace();
    assert!(
        capture.events.iter().all(|e| e.name == "run-2"),
        "run-1 events leaked: {:?}",
        capture.events
    );
    assert_eq!(capture.events.len(), 2);
}

#[test]
fn disabled_trace_span_overhead_is_negligible() {
    let _g = lock();
    let n = 1_000_000u32;
    let start = std::time::Instant::now();
    for _ in 0..n {
        let _s = obs::trace_span("disabled-hot-path");
        obs::trace_counter("disabled-counter", 1.0);
    }
    let per_call = start.elapsed().as_nanos() as f64 / f64::from(n);
    assert!(obs::take_trace().events.is_empty());
    // Disabled tracing is one relaxed load per call site; same 100x-slack
    // bound as the disabled span path above.
    assert!(
        per_call < 1_000.0,
        "disabled trace cost {per_call:.1} ns/iteration"
    );
}

#[test]
fn trace_ring_capacity_drops_new_events_and_reports() {
    let _g = lock();
    obs::trace_enable();
    for _ in 0..(obs::RING_CAPACITY + 100) {
        obs::trace_instant("spin");
    }
    obs::trace_disable();
    let capture = obs::take_trace();
    assert_eq!(capture.events.len(), obs::RING_CAPACITY);
    assert!(capture.dropped >= 100);
    // A capped capture still exports and validates (drop-new keeps the
    // B/E prefix balanced, and the dropped count rides in the file).
    let text = obs::chrome_trace_json(&capture).render();
    let summary = obs::validate_chrome_trace(&text).expect("capped export validates");
    assert_eq!(summary.dropped, capture.dropped);
}

#[test]
fn span_cap_drops_and_reports() {
    let _g = lock();
    obs::enable();
    for _ in 0..(obs::span::MAX_SPANS + 5) {
        let _s = obs::span("spin");
    }
    obs::disable();
    assert_eq!(obs::spans_snapshot().len(), obs::span::MAX_SPANS);
    assert_eq!(obs::span::dropped_spans(), 5);
    let rendered = obs::render_spans(&obs::spans_snapshot());
    assert!(rendered.contains("dropped"));
}
