//! Facade crate for the DLInfMA reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests and downstream users can depend on a single `dlinfma` package.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

pub use dlinfma_baselines as baselines;
pub use dlinfma_cluster as cluster;
pub use dlinfma_core as core;
pub use dlinfma_eval as eval;
pub use dlinfma_geo as geo;
pub use dlinfma_ml as ml;
pub use dlinfma_nn as nn;
pub use dlinfma_obs as obs;
pub use dlinfma_store as store;
pub use dlinfma_ststore as ststore;
pub use dlinfma_synth as synth;
pub use dlinfma_traj as traj;
