//! Failure injection: the pipeline must degrade gracefully, never panic,
//! when fed degenerate or hostile data.

use dlinfma::core::{
    build_pool, collect_evidence, extract_stay_points, DlInfMa, DlInfMaConfig, ExtractionConfig,
};
use dlinfma::geo::Point;
use dlinfma::synth::{
    generate, AddressId, Dataset, DeliveryTrip, Station, StationId, TripId, Waybill,
};
use dlinfma::traj::{TrajPoint, Trajectory};

/// A dataset with one empty trajectory, one single-fix trajectory, and one
/// all-spikes trajectory.
fn degenerate_dataset() -> Dataset {
    let (_, mut ds) = generate(
        dlinfma::synth::Preset::DowBJ,
        dlinfma::synth::Scale::Tiny,
        400,
    );
    // Trip 0: empty trajectory.
    ds.trips[0].trajectory = Trajectory::new();
    // Trip 1: single fix.
    let t1_start = ds.trips[1].t_start;
    ds.trips[1].trajectory =
        Trajectory::from_points(vec![TrajPoint::new(Point::new(0.0, 0.0), t1_start)]);
    // Trip 2: nothing but far-off multipath spikes.
    let t2_start = ds.trips[2].t_start;
    ds.trips[2].trajectory = Trajectory::from_points(
        (0..30)
            .map(|i| {
                TrajPoint::new(
                    Point::new((i as f64) * 1e4, -(i as f64) * 1e4),
                    t2_start + i as f64 * 13.5,
                )
            })
            .collect(),
    );
    ds
}

#[test]
fn pipeline_survives_degenerate_trajectories() {
    let ds = degenerate_dataset();
    let mut cfg = DlInfMaConfig::fast();
    cfg.model.max_epochs = 2;
    let mut dlinfma = DlInfMa::prepare(&ds, cfg);
    dlinfma.label_from_dataset(&ds);
    let split = dlinfma::synth::spatial_split(&ds, 0.6, 0.2);
    dlinfma.train(&split.train, &split.val);
    // Every address still gets an answer through the fallback.
    for &a in split.test.iter().take(10) {
        let p = dlinfma.infer_or_geocode(&ds, a);
        assert!(p.is_finite());
    }
}

#[test]
fn stay_point_extraction_handles_empty_and_spiky_trips() {
    let ds = degenerate_dataset();
    let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
    assert_eq!(stays.len(), ds.trips.len());
    assert!(
        stays[0].stays.is_empty(),
        "empty trajectory yields no stays"
    );
    assert!(stays[1].stays.is_empty(), "single fix yields no stays");
    assert!(
        stays[2].stays.is_empty(),
        "pure-spike trajectory yields no stays after filtering"
    );
}

#[test]
fn empty_dataset_end_to_end() {
    let ds = Dataset {
        addresses: vec![],
        trips: vec![],
        waybills: vec![],
        stations: vec![],
    };
    let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
    let pool = build_pool(&ds, &stays, 40.0);
    assert!(pool.is_empty());
    assert!(collect_evidence(&ds).is_empty());
    let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
    assert!(dlinfma.infer(AddressId(0)).is_none());
}

#[test]
fn waybills_with_identical_times_and_duplicated_addresses() {
    // A trip that delivers three parcels to the same address at the same
    // recorded instant (bulk order) must not confuse evidence collection.
    let mut traj = Trajectory::new();
    for i in 0..30 {
        traj.push(TrajPoint::new(
            Point::new((i / 10) as f64 * 100.0, 0.0),
            i as f64 * 13.5,
        ));
    }
    let trips = vec![DeliveryTrip {
        id: TripId(0),
        courier: dlinfma::synth::CourierId(0),
        station: StationId(0),
        t_start: 0.0,
        t_end: 400.0,
        trajectory: traj,
        waybills: vec![0, 1, 2],
    }];
    let waybills = (0..3)
        .map(|_| Waybill {
            address: AddressId(0),
            trip: TripId(0),
            t_received: 0.0,
            t_recorded_delivery: 200.0,
            t_actual_delivery: 200.0,
        })
        .collect();
    let ds = Dataset {
        addresses: vec![dlinfma::synth::Address {
            id: AddressId(0),
            building: dlinfma::synth::BuildingId(0),
            geocode: Point::new(50.0, 0.0),
            poi_category: 0,
            true_delivery_location: Point::new(100.0, 0.0),
            true_spot_kind: dlinfma::synth::DeliverySpotKind::Doorstep,
        }],
        trips,
        waybills,
        stations: vec![Station {
            id: StationId(0),
            location: Point::ZERO,
        }],
    };
    ds.validate();
    let evidence = collect_evidence(&ds);
    assert_eq!(evidence.len(), 1);
    assert_eq!(evidence[0].trips.len(), 1, "one trip despite 3 waybills");
    assert_eq!(evidence[0].trips[0].1, 200.0);
}

#[test]
fn all_confirmations_maximally_delayed_still_retrievable() {
    use dlinfma::synth::DelayConfig;
    use rand::SeedableRng;
    let (city, mut ds) = generate(
        dlinfma::synth::Preset::DowBJ,
        dlinfma::synth::Scale::Tiny,
        401,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    dlinfma::synth::inject_delays(
        &mut ds,
        &DelayConfig {
            n_batches: 1, // everything confirmed at trip end
            p_delay: 1.0,
            base_lag_s: (0.0, 1e-6),
        },
        &mut rng,
    );
    let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
    // The temporal bound is the trip end, so the true location's candidate
    // is still retrieved for nearly every address.
    let mut hit = 0;
    let mut total = 0;
    for sample in dlinfma.samples() {
        total += 1;
        let gt = city.addresses[sample.address.0 as usize].true_delivery_location;
        if sample
            .candidates
            .iter()
            .any(|&c| dlinfma.pool().candidate(c).pos.distance(&gt) < 30.0)
        {
            hit += 1;
        }
    }
    assert!(total > 0);
    assert!(
        hit * 10 >= total * 8,
        "{hit}/{total} retrievable at full delay"
    );
}
