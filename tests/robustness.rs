//! Table III integration: robustness against confirmation delays.
//!
//! The headline claim of the paper — annotation-based methods collapse as
//! the delay probability grows, DLInfMA does not — checked end to end on
//! synthetic sweeps.

use dlinfma::core::DlInfMaConfig;
use dlinfma::eval::{evaluate, ExperimentWorld, Method};
use dlinfma::synth::{world_config, DelayConfig, Preset, Scale};

fn world_at(p_delay: f64, seed: u64) -> ExperimentWorld {
    let mut cfg = world_config(Preset::DowBJ, Scale::Tiny);
    cfg.delays = DelayConfig::sweep(p_delay);
    ExperimentWorld::build_from(&cfg, seed, DlInfMaConfig::fast())
}

#[test]
fn annotation_degrades_with_delay_probability() {
    let mae_at = |p: f64| evaluate(&world_at(p, 7), Method::Annotation).metrics.mae;
    let light = mae_at(0.0);
    let heavy = mae_at(1.0);
    assert!(
        heavy > light * 1.5,
        "Annotation should collapse: {light:.1} -> {heavy:.1}"
    );
}

#[test]
fn geocoding_is_delay_invariant() {
    let mae_at = |p: f64| evaluate(&world_at(p, 8), Method::Geocoding).metrics.mae;
    let a = mae_at(0.2);
    let b = mae_at(1.0);
    assert!(
        (a - b).abs() < 1e-9,
        "Geocoding ignores delivery data: {a} vs {b}"
    );
}

#[test]
fn dlinfma_is_robust_where_annotation_collapses() {
    // Average over seeds: at p = 1.0 every confirmation is a batch
    // confirmation; annotated locations are arbitrarily far from the truth
    // while DLInfMA's temporal-upper-bound retrieval still contains it.
    let mut dl_total = 0.0;
    let mut an_total = 0.0;
    for seed in [11, 12, 13] {
        let world = world_at(1.0, seed);
        dl_total += evaluate(&world, Method::DlInfMa).metrics.mae;
        an_total += evaluate(&world, Method::Annotation).metrics.mae;
    }
    assert!(
        dl_total < an_total,
        "DLInfMA {dl_total:.0} !< Annotation {an_total:.0} at p=1.0"
    );
}

#[test]
fn candidate_heuristics_are_less_delay_sensitive_than_annotation() {
    // MinDist works off the candidate pool, which delays cannot shrink, so
    // its degradation from p=0 to p=1 must be milder than Annotation's.
    let deg = |method: Method| {
        let light = evaluate(&world_at(0.0, 9), method).metrics.mae;
        let heavy = evaluate(&world_at(1.0, 9), method).metrics.mae;
        heavy / light.max(1.0)
    };
    let annotation = deg(Method::Annotation);
    let min_dist = deg(Method::MinDist);
    assert!(
        min_dist < annotation,
        "MinDist degradation {min_dist:.2}x !< Annotation {annotation:.2}x"
    );
}
