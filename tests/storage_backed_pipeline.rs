//! Integration: the inference pipeline fed from the JUST-lite store
//! (deployment Figure 14 — trajectories and waybills live in the
//! spatio-temporal platform, DLInfMA pulls them from there).

use dlinfma::core::{DlInfMa, DlInfMaConfig};
use dlinfma::geo::{BBox, Point};
use dlinfma::ststore::{SpatioTemporalQuery, TimeRange, TrajectoryStore};
use dlinfma::synth::{generate, spatial_split, Preset, Scale};

#[test]
fn pipeline_runs_identically_from_a_store_snapshot() {
    let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 300);
    let store = TrajectoryStore::new();
    store.ingest_dataset(&ds);
    let snapshot = store.export_dataset(&ds);
    snapshot.validate();

    let split = spatial_split(&snapshot, 0.6, 0.2);
    let mut cfg = DlInfMaConfig::fast();
    cfg.model.max_epochs = 5;

    // Prepare from both sources; candidate pools must be identical since the
    // snapshot preserves every fix and waybill.
    let direct = DlInfMa::prepare(&ds, cfg);
    let via_store = DlInfMa::prepare(&snapshot, cfg);
    assert_eq!(direct.pool().len(), via_store.pool().len());

    // And training from the snapshot works end to end.
    let mut via_store = via_store;
    via_store.label_from_dataset(&snapshot);
    via_store.train(&split.train, &split.val);
    assert!(via_store.infer(split.test[0]).is_some());
}

#[test]
fn store_range_queries_support_region_extracts() {
    // The deployed pre-processing pulls a station's region for a time slice;
    // verify such an extract is consistent with the source data.
    let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 301);
    let store = TrajectoryStore::new();
    store.ingest_dataset(&ds);

    let q = SpatioTemporalQuery {
        bbox: BBox::new(Point::new(0.0, 0.0), Point::new(200.0, 200.0)),
        time: TimeRange::new(0.0, 86_400.0),
    };
    let fixes = store.range_query(&q);
    let mut expected = 0;
    for t in &ds.trips {
        for p in t.trajectory.points() {
            if q.bbox.contains(&p.pos) && q.time.contains(p.t) {
                expected += 1;
            }
        }
    }
    assert_eq!(fixes.len(), expected);
}
