//! Observability integration: pipeline-report funnel invariants on a full
//! Tiny-scale run, positive stage durations, and same-seed determinism of
//! the reported counts.

use dlinfma::core::{DlInfMa, DlInfMaConfig};
use dlinfma::obs::stage;
use dlinfma::synth::{generate, spatial_split, Preset, Scale, Split};

fn prepared(seed: u64) -> (DlInfMa, Split) {
    let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, seed);
    let split = spatial_split(&ds, 0.6, 0.2);
    let mut cfg = DlInfMaConfig::fast();
    cfg.model.max_epochs = 10;
    let mut dl = DlInfMa::prepare(&ds, cfg);
    dl.label_from_dataset(&ds);
    (dl, split)
}

#[test]
fn funnel_counts_satisfy_pipeline_invariants() {
    let (dl, _) = prepared(7);
    let r = dl.report();
    let f = &r.funnel;
    assert!(f.raw_points > 0);
    assert!(f.filtered_points <= f.raw_points);
    assert!(f.stay_points <= f.filtered_points);
    assert!(f.clusters <= f.stay_points);
    assert!(f.clusters > 0);
    // At Tiny scale every address retrieves a handful of candidates, so the
    // summed retrievals exceed the pool size.
    assert!(
        f.candidates_retrieved >= f.clusters,
        "candidates {} < clusters {}",
        f.candidates_retrieved,
        f.clusters
    );
    assert!(f.samples_labelled <= f.addresses_sampled);
    assert!(f.samples_labelled > 0);
    let violations = r.check_funnel();
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn every_stage_duration_is_positive() {
    let (mut dl, split) = prepared(8);
    dl.train(&split.train, &split.val);
    let r = dl.report();
    for name in [
        stage::NOISE_FILTER,
        stage::STAY_POINTS,
        stage::CLUSTERING,
        stage::RETRIEVAL,
        stage::FEATURES,
        stage::TRAINING,
    ] {
        let s = r
            .stage(name)
            .unwrap_or_else(|| panic!("stage '{name}' missing"));
        assert!(s.duration_ns > 0, "stage '{name}' has zero duration");
    }
    assert!(r.total_ns() > 0);
}

#[test]
fn same_seed_runs_report_identical_counts() {
    let (a, _) = prepared(9);
    let (b, _) = prepared(9);
    let (ra, rb) = (a.report(), b.report());
    assert_eq!(ra.funnel, rb.funnel);
    assert_eq!(ra.stages.len(), rb.stages.len());
    for (x, y) in ra.stages.iter().zip(&rb.stages) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.items_in, y.items_in, "stage '{}'", x.name);
        assert_eq!(x.items_out, y.items_out, "stage '{}'", x.name);
    }
}

#[test]
fn report_populates_without_enabling_the_collector() {
    // No test in this binary calls `obs::enable`, so the global collector
    // stays disabled — yet the typed report is still filled in.
    assert!(!dlinfma::obs::enabled());
    let (dl, _) = prepared(10);
    assert!(!dl.report().stages.is_empty());
    assert!(dlinfma::obs::spans_snapshot().is_empty());
}
