//! End-to-end integration: world generation → DLInfMA pipeline → deployment
//! store → applications.

use dlinfma::core::{DlInfMa, DlInfMaConfig};
use dlinfma::store::{plan_route, DeliveryLocationStore, QuerySource};
use dlinfma::synth::{generate, spatial_split, Preset, Scale};

#[test]
fn full_pipeline_beats_geocoding_and_serves_the_store() {
    let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 100);
    let split = spatial_split(&ds, 0.6, 0.2);
    let mut cfg = DlInfMaConfig::fast();
    cfg.model.max_epochs = 15;
    let mut dlinfma = DlInfMa::prepare(&ds, cfg);
    dlinfma.label_from_dataset(&ds);
    let report = dlinfma.train(&split.train, &split.val);
    assert!(report.epochs > 0);
    assert!(report.best_val_loss.is_finite());

    // Accuracy on the held-out spatial region.
    let mut err_model = 0.0;
    let mut err_geo = 0.0;
    for &a in &split.test {
        let gt = city.addresses[a.0 as usize].true_delivery_location;
        err_model += dlinfma.infer_or_geocode(&ds, a).distance(&gt);
        err_geo += ds.address(a).geocode.distance(&gt);
    }
    assert!(
        err_model < err_geo,
        "DLInfMA {:.0} !< Geocoding {:.0}",
        err_model,
        err_geo
    );

    // The deployment store answers through the fallback chain.
    let store = DeliveryLocationStore::new();
    store.refresh(&ds, &dlinfma);
    assert!(!store.is_empty());
    let delivered = ds.waybills[0].address;
    let (_, src) = store.query(delivered).expect("known address");
    assert_eq!(src, QuerySource::Address);
}

#[test]
fn route_planning_over_inferred_locations_tracks_reality_better() {
    // Averaged over seeds: tours planned on inferred locations, then walked
    // over the TRUE stop positions, must be shorter than tours planned on
    // geocodes (which mis-place stops by up to hundreds of meters).
    let mut total_geo = 0.0;
    let mut total_inf = 0.0;
    for seed in [101u64, 102, 103] {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, seed);
        let split = spatial_split(&ds, 0.6, 0.2);
        let mut cfg = DlInfMaConfig::fast();
        cfg.model.max_epochs = 15;
        let mut dlinfma = DlInfMa::prepare(&ds, cfg);
        dlinfma.label_from_dataset(&ds);
        dlinfma.train(&split.train, &split.val);

        for trip in ds.trips.iter().take(12) {
            let addrs: Vec<_> = trip
                .waybills
                .iter()
                .map(|&wi| ds.waybills[wi].address)
                .collect();
            if addrs.len() < 5 {
                continue;
            }
            let depot = ds.stations[trip.station.0 as usize].location;
            let truth: Vec<_> = addrs
                .iter()
                .map(|&a| city.addresses[a.0 as usize].true_delivery_location)
                .collect();
            let geocodes: Vec<_> = addrs.iter().map(|&a| ds.address(a).geocode).collect();
            let inferred: Vec<_> = addrs
                .iter()
                .map(|&a| dlinfma.infer_or_geocode(&ds, a))
                .collect();
            total_geo += plan_route(depot, &geocodes).length(depot, &truth);
            total_inf += plan_route(depot, &inferred).length(depot, &truth);
        }
    }
    assert!(
        total_inf < total_geo,
        "inferred-plan tours {total_inf:.0} !< geocode-plan tours {total_geo:.0}"
    );
}

#[test]
fn incremental_pool_supports_the_same_pipeline() {
    use dlinfma::core::{build_pool_incremental, extract_stay_points, ExtractionConfig};
    let (_, ds) = generate(Preset::SubBJ, Scale::Tiny, 102);
    let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
    // Bi-weekly batching (2 days at tiny scale to force several batches).
    let pool = build_pool_incremental(&ds, &stays, 40.0, 2.0 * 86_400.0);
    assert!(!pool.is_empty());
    // Every retrieved candidate set remains non-empty for delivered addresses
    // with at least one pre-confirmation stay.
    let evidence = dlinfma::core::collect_evidence(&ds);
    let nonempty = evidence
        .iter()
        .filter(|e| !dlinfma::core::retrieve_candidates(&pool, e).is_empty())
        .count();
    assert!(nonempty * 10 >= evidence.len() * 8);
}
