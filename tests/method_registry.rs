//! Smoke coverage of the complete Table II method registry: every method —
//! baselines, variants and ablations — must produce finite metrics on a
//! tiny world.

use dlinfma::eval::{evaluate, ExperimentWorld, Method};
use dlinfma::synth::{Preset, Scale};

#[test]
fn every_table2_method_produces_finite_metrics() {
    let world = ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 200);
    let mut names = Vec::new();
    for method in Method::all() {
        let r = evaluate(&world, method);
        assert!(
            r.metrics.mae.is_finite() && r.metrics.mae >= 0.0,
            "{}: MAE {}",
            r.name,
            r.metrics.mae
        );
        assert!(r.metrics.p95 >= r.metrics.mae * 0.5, "{}: odd P95", r.name);
        assert!((0.0..=100.0).contains(&r.metrics.beta50), "{}", r.name);
        assert_eq!(r.metrics.n, world.split.test.len(), "{}", r.name);
        names.push(r.name);
    }
    // All 22 rows of Table II are covered.
    assert_eq!(names.len(), 22);
}

#[test]
fn learned_methods_beat_the_worst_baseline_on_average() {
    // A coarse sanity ranking: averaged over the test region, the learned
    // candidate-based methods must beat the MaxTC heuristic the paper also
    // reports as (one of) the worst.
    let world = ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 201);
    let max_tc = evaluate(&world, Method::MaxTC).metrics.mae;
    for method in [Method::DlInfMa, Method::GeoRank] {
        let r = evaluate(&world, method);
        assert!(
            r.metrics.mae < max_tc * 1.5,
            "{} MAE {:.1} should not be far worse than MaxTC {:.1}",
            r.name,
            r.metrics.mae,
            max_tc
        );
    }
}
