//! Application 1 (Section VI-B): route planning over inferred delivery
//! locations.
//!
//! Plans a courier's tour twice — once over geocoded stops and once over
//! DLInfMA-inferred stops — and measures both tours against the *actual*
//! delivery locations. The inferred plan tracks reality far better.
//!
//! ```sh
//! cargo run --release --example route_planning
//! ```

use dlinfma::eval::ExperimentWorld;
use dlinfma::geo::Point;
use dlinfma::store::{plan_route, DeliveryLocationStore};
use dlinfma::synth::{Preset, Scale};

fn main() {
    let mut world = ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 17);
    let train = world.split.train.clone();
    let val = world.split.val.clone();
    world.dlinfma.train(&train, &val);

    // Deployment store with the fallback chain serves the planner.
    let store = DeliveryLocationStore::new();
    store.refresh(&world.dataset, &world.dlinfma);

    println!("Application 1: route planning for new couriers\n");
    let mut total_geo = 0.0;
    let mut total_inf = 0.0;
    let mut shown = 0;
    for trip in world.dataset.trips.iter().take(10) {
        // The day's batch of addresses for this courier.
        let addrs: Vec<_> = trip
            .waybills
            .iter()
            .map(|&wi| world.dataset.waybills[wi].address)
            .collect();
        if addrs.len() < 5 {
            continue;
        }
        let depot = world.dataset.stations[trip.station.0 as usize].location;
        let truth: Vec<Point> = addrs
            .iter()
            .map(|&a| world.dataset.address(a).true_delivery_location)
            .collect();
        let geocodes: Vec<Point> = addrs
            .iter()
            .map(|&a| world.dataset.address(a).geocode)
            .collect();
        let inferred: Vec<Point> = addrs
            .iter()
            .map(|&a| store.query(a).map(|(p, _)| p).unwrap_or(geocodes[0]))
            .collect();

        // Plan on each location source, then walk the plan over the REAL
        // stop positions — that's the distance the courier actually rides.
        let plan_geo = plan_route(depot, &geocodes);
        let plan_inf = plan_route(depot, &inferred);
        let real_geo = plan_geo.length(depot, &truth);
        let real_inf = plan_inf.length(depot, &truth);
        total_geo += real_geo;
        total_inf += real_inf;
        shown += 1;
        println!(
            "trip {:>3} ({:>2} stops): geocode-planned tour {:>7.0} m, \
             DLInfMA-planned tour {:>7.0} m",
            trip.id.0,
            addrs.len(),
            real_geo,
            real_inf
        );
    }
    println!(
        "\nTotal over {shown} trips: geocode plan {total_geo:.0} m, \
         DLInfMA plan {total_inf:.0} m ({:+.1}%)",
        (total_inf / total_geo - 1.0) * 100.0
    );
}
