//! Application 2 (Section VI-C): customer availability inference.
//!
//! Recorded confirmation times are delayed, so availability profiles built
//! from them are wrong. After inferring delivery locations, the actual
//! delivery time of each waybill is recovered from the stay point nearest
//! the inferred location, and hour-of-day availability windows are computed
//! from the corrected times.
//!
//! ```sh
//! cargo run --release --example availability
//! ```

use dlinfma::eval::ExperimentWorld;
use dlinfma::store::availability_profiles;
use dlinfma::synth::{Preset, Scale};

fn main() {
    let mut world = ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 23);
    let train = world.split.train.clone();
    let val = world.split.val.clone();
    world.dlinfma.train(&train, &val);

    println!("Application 2: customer availability inference\n");

    // How wrong are recorded times, and how much does correction help?
    let mut err_recorded = 0.0;
    let mut err_corrected = 0.0;
    let mut n = 0;
    for (wi, w) in world.dataset.waybills.iter().enumerate() {
        let Some(inferred) = world.dlinfma.infer(w.address) else {
            continue;
        };
        let t = dlinfma::store::corrected_delivery_time(
            world.dlinfma.pool(),
            &world.dataset,
            wi,
            inferred,
            30.0,
        );
        err_recorded += (w.t_recorded_delivery - w.t_actual_delivery).abs();
        err_corrected += (t - w.t_actual_delivery).abs();
        n += 1;
    }
    println!(
        "Delivery-time error vs ground truth over {n} waybills:\n\
         \x20 recorded times  {:>7.0} s mean error\n\
         \x20 corrected times {:>7.0} s mean error\n",
        err_recorded / n as f64,
        err_corrected / n as f64
    );

    // Availability windows for the most active customers.
    let profiles = availability_profiles(&world.dataset, &world.dlinfma, 30.0);
    let mut active: Vec<_> = profiles.iter().collect();
    active.sort_by_key(|(_, p)| std::cmp::Reverse(p.counts.iter().sum::<u32>()));
    println!("Availability windows (probability >= 0.25) of active customers:");
    for (addr, profile) in active.into_iter().take(8) {
        let windows = profile.windows(0.25);
        let total: u32 = profile.counts.iter().sum();
        let rendered: Vec<String> = windows.iter().map(|h| format!("{h:02}:00")).collect();
        println!(
            "  addr {:>4} ({:>2} deliveries): {}",
            addr.0,
            total,
            if rendered.is_empty() {
                "no dominant window".to_string()
            } else {
                rendered.join(", ")
            }
        );
    }
}
