//! Quickstart: generate a synthetic logistics world, run the full DLInfMA
//! pipeline, and compare its accuracy against plain geocoding.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dlinfma::core::{DlInfMa, DlInfMaConfig};
use dlinfma::eval::{dataset_stats, evaluate, multi_location_building_fraction, Method};
use dlinfma::eval::{render_metrics_table, ExperimentWorld};
use dlinfma::synth::{Preset, Scale};

fn main() {
    println!("DLInfMA quickstart — synthetic DowBJ-style world\n");

    // 1. Generate a world: city, couriers, trips, waybills with the
    //    batch-confirmation delays observed in the paper's real data.
    let world = ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 42);
    let stats = dataset_stats(&world.dataset);
    println!("Dataset ({}):", Preset::DowBJ.name());
    println!("  addresses        {:>8}", stats.n_addresses);
    println!("  buildings        {:>8}", stats.n_buildings);
    println!("  delivery trips   {:>8}", stats.n_trips);
    println!("  waybills         {:>8}", stats.n_waybills);
    println!("  GPS fixes        {:>8}", stats.n_gps_points);
    println!("  sampling rate    {:>8.1} s", stats.mean_sampling_s);
    println!(
        "  multi-location buildings {:>5.1}%\n",
        multi_location_building_fraction(&world.dataset) * 100.0
    );

    // 2. The pipeline is already prepared inside the world: stay points ->
    //    candidate pool -> per-address candidates + features.
    println!(
        "Candidate pool: {} locations from {} trips",
        world.dlinfma.pool().len(),
        world.dataset.trips.len()
    );

    // 3. Evaluate DLInfMA against the no-learning baselines on the spatially
    //    disjoint test region.
    let results: Vec<_> = [
        Method::Geocoding,
        Method::Annotation,
        Method::GeoCloud,
        Method::MinDist,
        Method::MaxTC,
        Method::MaxTcIlc,
        Method::DlInfMa,
    ]
    .into_iter()
    .map(|m| evaluate(&world, m))
    .collect();
    println!("{}", render_metrics_table("Test-region accuracy", &results));

    // 4. The same API a downstream user would drive directly:
    let (_, dataset) = dlinfma::synth::generate(Preset::SubBJ, Scale::Tiny, 7);
    let split = dlinfma::synth::spatial_split(&dataset, 0.6, 0.2);
    let mut pipeline = DlInfMa::prepare(&dataset, DlInfMaConfig::fast());
    pipeline.label_from_dataset(&dataset);
    let report = pipeline.train(&split.train, &split.val);
    let example_addr = split.test[0];
    println!(
        "Direct API on {}: trained {} epochs (best val loss {:.3}); \
         address {:?} -> {:?}",
        Preset::SubBJ.name(),
        report.epochs,
        report.best_val_loss,
        example_addr,
        pipeline.infer(example_addr)
    );
}
