//! Case studies (Figure 12): the three geocoding failure modes and how
//! DLInfMA recovers from each.
//!
//! 1. **Wrong address parsing** — similarly-named compounds confuse the
//!    geocoder and the geocode lands hundreds of meters away.
//! 2. **Coarse POI database** — several buildings share one compound-level
//!    geocode at the block center.
//! 3. **Customer preference** — two addresses in the same building are
//!    delivered to different spots (doorstep vs a parcel-accepting store),
//!    which a single geocode can never express.
//!
//! ```sh
//! cargo run --release --example case_studies
//! ```

use dlinfma::eval::ExperimentWorld;
use dlinfma::synth::{DeliverySpotKind, Preset, Scale};
use std::collections::HashMap;

fn main() {
    let mut world = ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 9);
    // Train on the train/val regions; the cases below are read from the
    // whole world since the narrative is per-address.
    let train = world.split.train.clone();
    let val = world.split.val.clone();
    world.dlinfma.train(&train, &val);

    println!("Figure 12-style case studies\n");

    // Case 1: wrong parsing — geocode far from the truth.
    let case1 = world
        .dataset
        .addresses
        .iter()
        .filter(|a| world.dlinfma.infer(a.id).is_some())
        .max_by(|a, b| {
            let da = a.geocode.distance(&a.true_delivery_location);
            let db = b.geocode.distance(&b.true_delivery_location);
            da.partial_cmp(&db).expect("finite")
        })
        .expect("world has addresses");
    let inferred = world.dlinfma.infer(case1.id).expect("filtered");
    println!("Case 1 — wrong address parsing (addr {:?}):", case1.id);
    println!(
        "  geocode error  {:>7.1} m   (the geocoder picked another compound)",
        case1.geocode.distance(&case1.true_delivery_location)
    );
    println!(
        "  DLInfMA error  {:>7.1} m\n",
        inferred.distance(&case1.true_delivery_location)
    );

    // Case 2: coarse POI database — several addresses share one geocode.
    let mut by_geocode: HashMap<(i64, i64), Vec<&dlinfma::synth::Address>> = HashMap::new();
    for a in &world.dataset.addresses {
        by_geocode
            .entry((a.geocode.x.round() as i64, a.geocode.y.round() as i64))
            .or_default()
            .push(a);
    }
    if let Some(shared) = by_geocode
        .values()
        .filter(|v| v.len() >= 3)
        .max_by_key(|v| v.len())
    {
        println!(
            "Case 2 — coarse POI database: {} addresses share one geocode",
            shared.len()
        );
        for a in shared.iter().take(4) {
            let geo_err = a.geocode.distance(&a.true_delivery_location);
            match world.dlinfma.infer(a.id) {
                Some(p) => println!(
                    "  addr {:?}: geocode error {:>6.1} m -> DLInfMA error {:>6.1} m",
                    a.id,
                    geo_err,
                    p.distance(&a.true_delivery_location)
                ),
                None => println!(
                    "  addr {:?}: geocode error {:>6.1} m (no deliveries yet — falls back)",
                    a.id, geo_err
                ),
            }
        }
        println!();
    }

    // Case 3: preference-aware inference — same building, different spots.
    let by_building = world.dataset.addresses_by_building();
    let diverse = by_building.values().find(|ids| {
        let kinds: Vec<DeliverySpotKind> = ids
            .iter()
            .map(|&a| world.dataset.address(a).true_spot_kind)
            .collect();
        kinds.len() >= 2 && kinds.windows(2).any(|w| w[0] != w[1])
    });
    if let Some(ids) = diverse {
        println!("Case 3 — one building, different customer preferences:");
        for &aid in ids.iter().take(3) {
            let a = world.dataset.address(aid);
            let inferred = world.dlinfma.infer(aid);
            println!(
                "  addr {:?} prefers {:?}: truth ({:.0},{:.0}), geocode ({:.0},{:.0}), inferred {}",
                aid,
                a.true_spot_kind,
                a.true_delivery_location.x,
                a.true_delivery_location.y,
                a.geocode.x,
                a.geocode.y,
                inferred
                    .map(|p| format!("({:.0},{:.0})", p.x, p.y))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
}
